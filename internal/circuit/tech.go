// Package circuit is the analytical circuit-timing, retention, stability,
// and leakage model that stands in for the paper's Hspice + Predictive
// Technology Model simulations. It models:
//
//   - alpha-power-law MOSFET drive current and sub-threshold leakage;
//   - the 6T SRAM cell (1X and 2X variants): read access time under
//     device variation, read-stability (bit-flip) probability from
//     cross-coupled device mismatch, and leakage through its three
//     strong leakage paths;
//   - the 3T1D DRAM cell of Luk et al.: storage-node decay through the
//     write-access transistor, gated-diode voltage boosting, the access
//     time versus time-since-write curve (paper Fig. 4), and the
//     retention time — the period during which the 3T1D access time
//     matches nominal 6T speed (the paper's redefinition in §2.2);
//   - array periphery (decoder, wordline, bitline, sense amp) timing and
//     per-access energies for the 64 KB L1 data-cache geometry.
//
// All model constants are calibrated against the anchor values the paper
// publishes (Table 1, Table 3, Fig. 4, §2.1, §4.1); the calibration is
// enforced by tests in calibration_test.go.
package circuit

// Tech bundles the technology-node parameters of Table 1 plus the
// electrical constants the analytical models need. Instances should be
// treated as immutable; derive modified copies by value.
type Tech struct {
	Name string
	// NodeNM is the feature size in nanometres (65, 45, 32).
	NodeNM int
	// Vdd is the nominal supply voltage in volts.
	Vdd float64 //unit:volts
	// Vth0 is the nominal threshold voltage in volts.
	Vth0 float64 //unit:volts
	// FreqGHz is the nominal chip frequency from Table 1.
	FreqGHz float64 //unit:gigahertz
	// CellAreaUM2 is the minimum-size 6T cell area from Table 1 (µm²).
	CellAreaUM2 float64 //unit:micrometers^2
	// WireWidthUM and WireThickUM are the wire geometry from Table 1 (µm).
	WireWidthUM, WireThickUM float64 //unit:micrometers
	// OxideNM is the gate-oxide thickness from Table 1 (nm).
	OxideNM float64 //unit:nanometers

	// AccessTime6T is the ideal (no-variation) 6T L1 array access time in
	// seconds; Table 3 column 1.
	AccessTime6T float64 //unit:seconds
	// Retention3T1D is the nominal (no-variation) 3T1D cell retention
	// time in seconds (≈5.8 µs at 32 nm per Fig. 4; §4.1 quotes ≈6000 ns
	// for the cache).
	Retention3T1D float64 //unit:seconds
	// LeakagePower6T is the ideal 6T 64 KB cache leakage power in watts
	// (Table 3).
	LeakagePower6T float64 //unit:watts
	// EnergyPerAccess is the dynamic energy of one full-width cache
	// access in joules, derived from Table 3's full dynamic power at the
	// nominal frequency.
	EnergyPerAccess float64 //unit:joules

	// --- Model constants (calibrated, see calibration_test.go) ---

	// Alpha is the alpha-power-law velocity-saturation exponent.
	Alpha float64 //unit:dimensionless
	// SubVTSlope is the effective sub-threshold swing parameter n·vT in
	// volts (vT at the 80 °C simulation temperature of §3.1).
	SubVTSlope float64 //unit:volts
	// SCE couples gate-length deviation into threshold voltage
	// (short-channel effect): ΔVth = -SCE · (ΔL/L) · Vth0 for shorter
	// channels (negative ΔL lowers Vth).
	SCE float64 //unit:dimensionless
	// LeakSCE is the (stronger) gate-length coupling used for static
	// leakage only: sub-threshold current responds to ΔL through DIBL
	// and Vth roll-off much more sharply than drive current does. It
	// produces the paper's ≈5-10× chip-to-chip leakage spread (§2.1).
	LeakSCE float64 //unit:dimensionless
	// BitlineFrac is the fraction of the array access path that scales
	// with cell read current (the rest is decoder/wire/sense-amp).
	BitlineFrac float64 //unit:dimensionless
	// DiodeBoost is the gated-diode voltage gain when reading a stored
	// "1" (the paper's Fig. 3 shows 0.6 V boosted to 1.13 V, ≈1.9×).
	DiodeBoost float64 //unit:dimensionless
	// MarginFrac is the nominal read margin of the 3T1D cell: the
	// fraction of the freshly-written storage level that can decay before
	// the access time exceeds the 6T nominal. Together with Retention3T1D
	// it fixes the decay rate.
	MarginFrac float64 //unit:dimensionless
	// T3Weight is the weight of the series read-wordline transistor (T3)
	// in the 3T1D required-level computation: T3 runs at full gate drive
	// and contributes only part of the read-path resistance at the
	// retention crossing.
	T3Weight float64 //unit:dimensionless
	// RetleakSens is the effective sensitivity (volts) of storage-node
	// decay current to the write-transistor threshold deviation; larger
	// values mean retention varies less with Vth. It is an effective
	// lumped parameter (sub-threshold plus junction and gate leakage),
	// deliberately softer than SubVTSlope.
	RetLeakSens float64 //unit:volts
	// FlipThreshold is the cross-coupled mismatch (volts) beyond which a
	// 6T cell's read becomes pseudo-destructive (§2.1); calibrated to the
	// ≈0.4 % bit-flip rate at 32 nm typical variation.
	FlipThreshold float64 //unit:volts
}

// Technology nodes from Table 1 of the paper. AccessTime6T, frequency,
// leakage, and dynamic-power anchors come from Table 3.
var (
	Node65 = Tech{
		Name: "65nm", NodeNM: 65, Vdd: 1.2, Vth0: 0.35, FreqGHz: 3.0,
		CellAreaUM2: 0.90, WireWidthUM: 0.10, WireThickUM: 0.20, OxideNM: 1.2,
		AccessTime6T:    285e-12,
		Retention3T1D:   12.0e-6,
		LeakagePower6T:  15.8e-3,
		EnergyPerAccess: 31.97e-3 / 3.0e9,
		Alpha:           1.3, SubVTSlope: 0.0456, SCE: 0.30, LeakSCE: 2.2,
		BitlineFrac: 0.50, DiodeBoost: 1.88, MarginFrac: 0.32, T3Weight: 0.35,
		RetLeakSens: 0.15, FlipThreshold: 0.145,
	}
	Node45 = Tech{
		Name: "45nm", NodeNM: 45, Vdd: 1.1, Vth0: 0.32, FreqGHz: 3.5,
		CellAreaUM2: 0.45, WireWidthUM: 0.07, WireThickUM: 0.14, OxideNM: 1.1,
		AccessTime6T:    251e-12,
		Retention3T1D:   8.7e-6,
		LeakagePower6T:  36.0e-3,
		EnergyPerAccess: 25.96e-3 / 3.5e9,
		Alpha:           1.3, SubVTSlope: 0.0456, SCE: 0.30, LeakSCE: 2.2,
		BitlineFrac: 0.50, DiodeBoost: 1.88, MarginFrac: 0.31, T3Weight: 0.35,
		RetLeakSens: 0.145, FlipThreshold: 0.132,
	}
	Node32 = Tech{
		Name: "32nm", NodeNM: 32, Vdd: 1.1, Vth0: 0.30, FreqGHz: 4.3,
		CellAreaUM2: 0.23, WireWidthUM: 0.05, WireThickUM: 0.10, OxideNM: 1.0,
		AccessTime6T:    208e-12,
		Retention3T1D:   5.8e-6,
		LeakagePower6T:  78.2e-3,
		EnergyPerAccess: 20.75e-3 / 4.3e9,
		Alpha:           1.3, SubVTSlope: 0.0456, SCE: 0.30, LeakSCE: 2.2,
		BitlineFrac: 0.50, DiodeBoost: 1.88, MarginFrac: 0.285, T3Weight: 0.35,
		RetLeakSens: 0.14, FlipThreshold: 0.122,
	}
)

// Nodes lists the three technology nodes in scaling order.
var Nodes = []Tech{Node65, Node45, Node32}

// CyclePS returns the nominal clock period in picoseconds.
//
//unit:result picoseconds
func (t Tech) CyclePS() float64 { return GigahertzPeriodPicoseconds / t.FreqGHz }

// CycleSeconds returns the nominal clock period in seconds.
//
//unit:result seconds
func (t Tech) CycleSeconds() float64 { return GigahertzPeriodSeconds / t.FreqGHz }

// RetentionCycles returns the nominal 3T1D retention time expressed in
// clock cycles at the nominal frequency.
//
//unit:result dimensionless
func (t Tech) RetentionCycles() float64 {
	return t.Retention3T1D / t.CycleSeconds()
}

// Device is one transistor's process corner: relative deviations of gate
// length (ΔL/L) and threshold voltage (ΔVth/Vth0) as produced by
// internal/variation.
type Device struct {
	DL   float64 //unit:dimensionless
	DVth float64 //unit:dimensionless
}

// Nominal is the zero-deviation device.
var Nominal = Device{}

// VthEff returns the device's effective threshold voltage in volts,
// combining random-dopant deviation with the short-channel-effect
// coupling of gate-length deviation (shorter channel → lower Vth).
//
//unit:result volts
func (t Tech) VthEff(d Device) float64 {
	return t.Vth0*(1+d.DVth) + t.SCE*d.DL*t.Vth0
}

// DriveFactor returns the device's saturation drive current relative to
// nominal, per the alpha-power law: I ∝ (Vgs-Vth)^α / L. Vgs defaults to
// Vdd. A device whose Vth reaches Vgs has (almost) no drive; the result
// is floored at a small positive value so downstream delay computations
// yield very-slow rather than infinite.
//
//unit:result dimensionless
func (t Tech) DriveFactor(d Device) float64 {
	return t.DriveFactorAt(d, t.Vdd)
}

// DriveFactorAt is DriveFactor with an explicit gate voltage, used for
// the 3T1D read transistor whose gate is the boosted storage node.
//
//unit:param vgs volts
//unit:result dimensionless
func (t Tech) DriveFactorAt(d Device, vgs float64) float64 {
	over := vgs - t.VthEff(d)
	overNom := t.Vdd - t.Vth0
	if over < 1e-3 {
		over = 1e-3
	}
	f := pow(over/overNom, t.Alpha) / (1 + d.DL)
	if f < 1e-6 {
		f = 1e-6
	}
	return f
}

// LeakFactor returns the device's sub-threshold leakage current relative
// to nominal: I_off ∝ exp(-Vth/(n·vT)) / L, with the stronger LeakSCE
// channel-length coupling (DIBL / Vth roll-off).
//
//unit:result dimensionless
func (t Tech) LeakFactor(d Device) float64 {
	dv := t.Vth0*d.DVth + t.LeakSCE*d.DL*t.Vth0
	return exp(-dv/t.SubVTSlope) / (1 + d.DL)
}

// retLeakFactor is the softened leakage factor used for storage-node
// decay (see RetLeakSens).
//
//unit:result dimensionless
func (t Tech) retLeakFactor(d Device) float64 {
	dv := t.VthEff(d) - t.Vth0
	return exp(-dv/t.RetLeakSens) / (1 + d.DL)
}
