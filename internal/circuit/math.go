package circuit

import "math"

// Thin aliases so the model files read like the equations in the paper's
// references without repeating the package qualifier everywhere.
func pow(x, y float64) float64 { return math.Pow(x, y) }
func exp(x float64) float64    { return math.Exp(x) }
