package circuit

import "math"

// Thin aliases so the model files read like the equations in the paper's
// references without repeating the package qualifier everywhere. Both
// are transcendental, so their arguments must be dimensionless — the
// unit tags make the analyzer enforce that every exponent and every
// exp() argument is a ratio, which is what forces conversion constants
// like LeakageDoublingCelsius to exist.
//
//unit:param x dimensionless
//unit:param y dimensionless
//unit:result dimensionless
func pow(x, y float64) float64 { return math.Pow(x, y) }

//unit:param x dimensionless
//unit:result dimensionless
func exp(x float64) float64 { return math.Exp(x) }
