package circuit

// Cell3T1D identifies the three transistors of the Luk et al. dynamic
// cell (Fig. 3a of the paper):
//
//	T1 — write access transistor; its threshold sets the degraded stored
//	     "1" level (V0 = Vdd - Vth,T1) and its off-state leakage drains
//	     the storage node over time.
//	T2 — read transistor whose gate is the storage node, boosted by the
//	     gated diode D1 during reads.
//	T3 — read wordline transistor in series with T2.
//
// The gated diode D1 is modelled through Tech.DiodeBoost: when a "1" is
// stored, the read raises the T2 gate to DiodeBoost × V(t).
type Cell3T1D struct {
	T1, T2, T3 Device
}

// Nominal3T1D is the zero-deviation cell.
var Nominal3T1D = Cell3T1D{}

// storedLevel returns the freshly-written "1" level on the storage node:
// the write transistor drops its threshold (degraded level, §2.2).
//
//unit:result volts
func (t Tech) storedLevel(c Cell3T1D) float64 {
	v := t.Vdd - t.VthEff(c.T1)
	if v < 0 {
		v = 0
	}
	return v
}

// nominalStoredLevel is V0 for a nominal cell.
//
//unit:result volts
func (t Tech) nominalStoredLevel() float64 { return t.Vdd - t.Vth0 }

// requiredLevel returns the storage-node voltage at which the cell's
// read exactly matches the nominal 6T array access time. Below this
// level the cell is slower than 6T and, per the paper's retention-time
// definition, the data has expired.
//
// The nominal required level is fixed by MarginFrac; deviations of the
// read path shift it:
//   - a higher T2 threshold needs a higher boosted gate voltage;
//   - weaker drive (longer channel, weaker T3 in series) needs more
//     overdrive, scaled through the alpha-power law.
//
//unit:result volts
func (t Tech) requiredLevel(c Cell3T1D) float64 {
	v0n := t.nominalStoredLevel()
	vreqNom := v0n * (1 - t.MarginFrac)
	overNom := t.DiodeBoost*vreqNom - t.Vth0 // nominal T2 gate overdrive at the crossing
	if overNom < 0.05 {
		overNom = 0.05
	}
	// Series read-wordline transistor: a weaker T3 demands more current
	// from T2, weighted by T3Weight since T3 operates with full Vdd gate
	// drive and contributes less resistance than T2 at the crossing.
	h := pow(1/t.DriveFactor(c.T3), t.T3Weight)
	if h < 0.25 {
		h = 0.25
	}
	scale := pow(h*(1+c.T2.DL), 1/t.Alpha)
	over := overNom * scale
	return (t.VthEff(c.T2) + over) / t.DiodeBoost
}

// decayRate returns the storage-node discharge rate in volts/second.
// The nominal rate is anchored so a nominal cell crosses the required
// level exactly at Tech.Retention3T1D; the write transistor's leakage
// corner then scales it with the softened exponential sensitivity
// RetLeakSens (sub-threshold plus junction and gate leakage lumped).
//
//unit:result volts/seconds
func (t Tech) decayRate(c Cell3T1D) float64 {
	v0n := t.nominalStoredLevel()
	marginNom := v0n * t.MarginFrac
	return marginNom / t.Retention3T1D * t.retLeakFactor(c.T1)
}

// StorageLevel returns the storage-node voltage a time elapsed (seconds)
// after a "1" was written, clipped at zero.
//
//unit:param elapsed seconds
//unit:result volts
func (t Tech) StorageLevel(c Cell3T1D, elapsed float64) float64 {
	v := t.storedLevel(c) - t.decayRate(c)*elapsed
	if v < 0 {
		v = 0
	}
	return v
}

// RetentionTime returns the cell's retention time in seconds: the elapsed
// time after a write during which the cell's read access is at least as
// fast as the nominal 6T array (§2.2's redefinition). A cell whose read
// path cannot match 6T speed even immediately after the write has zero
// retention — it is dead.
//
//unit:result seconds
func (t Tech) RetentionTime(c Cell3T1D) float64 {
	margin := t.storedLevel(c) - t.requiredLevel(c)
	if margin <= 0 {
		return 0
	}
	return margin / t.decayRate(c)
}

// AccessTime3T1D returns the absolute array access time of the cell a
// time elapsed after its last write — the Fig. 4 curve. While the stored
// charge is fresh the boosted read beats the 6T array; as the charge
// drains the access time grows and crosses the 6T line at the retention
// time. Once the boosted gate falls to the T2 threshold the cell is
// effectively unreadable and the access time diverges (capped for
// numerical hygiene).
//
//unit:param elapsed seconds
//unit:result seconds
func (t Tech) AccessTime3T1D(c Cell3T1D, elapsed float64) float64 {
	// Current available from T2 at the boosted gate level, in series
	// with T3, normalized against the current needed to match 6T.
	vg := t.DiodeBoost * t.StorageLevel(c, elapsed)
	i2 := t.DriveFactorAt(c.T2, vg)
	i3 := t.DriveFactor(c.T3)
	// Reference currents at the nominal crossing point.
	vreqNom := t.nominalStoredLevel() * (1 - t.MarginFrac)
	i2n := t.DriveFactorAt(Nominal, t.DiodeBoost*vreqNom)
	i3n := t.DriveFactor(Nominal)
	iCell := 2 / (1/i2 + 1/i3)
	iRef := 2 / (1/i2n + 1/i3n)
	factor := iRef / iCell
	const maxFactor = 50
	if factor > maxFactor {
		factor = maxFactor
	}
	return t.AccessTime6T * ((1 - t.BitlineFrac) + t.BitlineFrac*factor)
}

// Leak3T1DRatio is the nominal static leakage of a 3T1D cell relative to
// a 1X 6T cell. A 6T cell has three strong leakage paths; the 3T1D cell
// has a single path that is slightly strong only while a fresh "1" is
// stored and weak otherwise (§2.2). The blend assumes roughly half the
// cells hold decayed or zero data at any instant.
const Leak3T1DRatio = 0.22 //unit:dimensionless

// LeakFactor3T1D returns a 3T1D cell's leakage relative to a *nominal 1X
// 6T* cell, given the cell's devices. Only the single storage-path
// device matters; its corner scales the one path.
//
//unit:result dimensionless
func (t Tech) LeakFactor3T1D(c Cell3T1D) float64 {
	return Leak3T1DRatio * t.LeakFactor(c.T1)
}
