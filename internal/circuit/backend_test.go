package circuit

import (
	"math"
	"sort"
	"strings"
	"testing"

	"tdcache/internal/stats"
	"tdcache/internal/variation"
)

func TestRegisterBackendDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate registration did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, Backend3T1D.Name()) {
			t.Errorf("panic %q does not name the colliding backend %q", msg, Backend3T1D.Name())
		}
	}()
	RegisterBackend(Backend3T1D)
}

func TestLookupBackend(t *testing.T) {
	b, ok := LookupBackend("")
	if !ok || b != Backend3T1D {
		t.Errorf(`LookupBackend("") = %v, %v; want the 3T1D reference backend`, b, ok)
	}
	b, ok = LookupBackend(DefaultBackendName)
	if !ok || b != Backend3T1D {
		t.Errorf("LookupBackend(%q) = %v, %v; want the 3T1D reference backend", DefaultBackendName, b, ok)
	}
	if _, ok := LookupBackend("nonesuch"); ok {
		t.Error("LookupBackend found an unregistered backend")
	}
}

func TestBackendNamesSorted(t *testing.T) {
	names := BackendNames()
	want := []string{"3t1d", "sttram"}
	if len(names) != len(want) {
		t.Fatalf("BackendNames() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BackendNames() = %v, want %v", names, want)
		}
	}
}

// TestNilBackendIsReferenceModel pins the refactor's compatibility
// contract: a ChipEval with no backend set behaves exactly like the
// registered 3T1D reference implementation, so every pre-refactor call
// site produces byte-identical retention maps.
func TestNilBackendIsReferenceModel(t *testing.T) {
	c := variation.NewChip(stats.NewRNG(7), 0, variation.Typical, L1D.TileCols, L1D.TileRows)
	e := NewChipEval(Node32, L1D, c)
	implicit := e.RetentionMap()
	explicit := Backend3T1D.RetentionMap(e)
	if len(implicit) != L1D.Lines || len(explicit) != L1D.Lines {
		t.Fatalf("retention maps have %d/%d lines, want %d", len(implicit), len(explicit), L1D.Lines)
	}
	for i := range implicit {
		if implicit[i] != explicit[i] {
			t.Fatalf("line %d: nil-backend retention %v != Backend3T1D %v", i, implicit[i], explicit[i])
		}
	}
	if got := e.ActiveBackend(); got != Backend3T1D {
		t.Errorf("ActiveBackend() = %v, want Backend3T1D", got)
	}
}

// TestSTTRAMClassStructure checks the per-way retention classes on a
// zero-variation chip: every line in a high way must sit exactly at
// τ0·exp(ΔHi), every relaxed line at τ0·exp(ΔLo).
func TestSTTRAMClassStructure(t *testing.T) {
	b := STTRAMBackend
	c := variation.NewChip(stats.NewRNG(3), 0, variation.NoVariation, L1D.TileCols, L1D.TileRows)
	e := NewChipEval(Node32, L1D, c)
	e.Backend = b
	m := e.RetentionMap()

	wantHi := b.Tau0Sec * math.Exp(b.DeltaHi)
	wantLo := b.Tau0Sec * math.Exp(b.DeltaLo)
	perWay := L1D.Lines / ways(L1D)
	var nHi int
	for line, got := range m {
		want := wantLo
		if line/perWay < b.HiWays {
			want = wantHi
			nHi++
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Fatalf("line %d (way %d): retention %.4g s, want %.4g s", line, line/perWay, got, want)
		}
	}
	if wantFrac := b.HiWays * perWay; nHi != wantFrac {
		t.Errorf("%d high-class lines, want %d", nHi, wantFrac)
	}
	if wantHi <= wantLo {
		t.Error("high class must out-retain the relaxed class")
	}
}

// TestSTTRAMVariationSpread checks the variation mapping is live under
// severe variation: per-line retentions spread (per-cell Δ draws and
// the systematic gate-length field both bite — a line can land above
// its class nominal on a long-channel tile), the weakest relaxed line
// sits below the class nominal, and the class gap survives in the
// population medians.
func TestSTTRAMVariationSpread(t *testing.T) {
	b := STTRAMBackend
	c := variation.NewChip(stats.NewRNG(11), 0, variation.Severe, L1D.TileCols, L1D.TileRows)
	e := NewChipEval(Node32, L1D, c)
	e.Backend = b
	m := e.RetentionMap()

	perWay := L1D.Lines / ways(L1D)
	distinct := make(map[float64]bool)
	var lo, hi []float64
	for line, got := range m {
		if got <= 0 {
			t.Fatalf("line %d: non-positive retention %v", line, got)
		}
		distinct[got] = true
		if line/perWay < b.HiWays {
			hi = append(hi, got)
		} else {
			lo = append(lo, got)
		}
	}
	if len(distinct) < perWay {
		t.Errorf("only %d distinct retentions across %d lines — per-cell draws look dead", len(distinct), L1D.Lines)
	}
	sort.Float64s(lo)
	sort.Float64s(hi)
	nomLo := b.Tau0Sec * math.Exp(b.DeltaLo)
	if lo[0] >= nomLo {
		t.Errorf("weakest relaxed line %.4g s not below class nominal %.4g s — variation looks dead", lo[0], nomLo)
	}
	if medLo, medHi := lo[len(lo)/2], hi[len(hi)/2]; medLo*10 > medHi {
		t.Errorf("median relaxed %.4g s vs median high %.4g s — class gap collapsed", medLo, medHi)
	}
}

func TestSTTRAMPolicy(t *testing.T) {
	pol := STTRAMBackend.Policy()
	if pol.Kind != PolicyClassDeadline {
		t.Errorf("policy kind = %v, want class-deadline", pol.Kind)
	}
	if !pol.DVFSAware {
		t.Error("STT-RAM backend must be DVFS-aware")
	}
	if pol.RetentionClasses != 2 {
		t.Errorf("retention classes = %d, want 2", pol.RetentionClasses)
	}
	wantDeadline := 2 * STTRAMBackend.Tau0Sec * math.Exp(STTRAMBackend.DeltaLo)
	if pol.CounterDeadlineSec != wantDeadline {
		t.Errorf("counter deadline = %v s, want 2× the relaxed nominal %v s", pol.CounterDeadlineSec, wantDeadline)
	}

	// Degenerate mixes collapse to one class, and an all-high array
	// anchors its deadline on the high class.
	uniformHi := STTRAMBackend.WithHiWays(ways(L1D))
	pol = uniformHi.Policy()
	if pol.RetentionClasses != 1 {
		t.Errorf("uniform-hi retention classes = %d, want 1", pol.RetentionClasses)
	}
	if want := 2 * uniformHi.Tau0Sec * math.Exp(uniformHi.DeltaHi); pol.CounterDeadlineSec != want {
		t.Errorf("uniform-hi counter deadline = %v s, want %v s", pol.CounterDeadlineSec, want)
	}
	if pol := STTRAMBackend.WithHiWays(0).Policy(); pol.RetentionClasses != 1 {
		t.Errorf("uniform-lo retention classes = %d, want 1", pol.RetentionClasses)
	}
}

// TestWithHiWaysDoesNotMutate pins WithHiWays's value-copy semantics:
// the registered singleton must stay immutable.
func TestWithHiWaysDoesNotMutate(t *testing.T) {
	before := *STTRAMBackend
	v := STTRAMBackend.WithHiWays(0)
	if v == STTRAMBackend {
		t.Fatal("WithHiWays returned the registered singleton")
	}
	if *STTRAMBackend != before {
		t.Fatal("WithHiWays mutated the registered singleton")
	}
	if v.HiWays != 0 || v.DeltaLo != before.DeltaLo {
		t.Errorf("variant = %+v, want HiWays=0 with other fields preserved", v)
	}
}
