package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodeTableParameters(t *testing.T) {
	// Table 1 of the paper.
	cases := []struct {
		tech    Tech
		area    float64
		wireW   float64
		oxide   float64
		freq    float64
		access  float64 // Table 3 ideal access time, ps
		leakPwr float64 // Table 3 ideal 6T leakage, mW
	}{
		{Node65, 0.90, 0.10, 1.2, 3.0, 285, 15.8},
		{Node45, 0.45, 0.07, 1.1, 3.5, 251, 36.0},
		{Node32, 0.23, 0.05, 1.0, 4.3, 208, 78.2},
	}
	for _, c := range cases {
		if c.tech.CellAreaUM2 != c.area || c.tech.WireWidthUM != c.wireW ||
			c.tech.OxideNM != c.oxide || c.tech.FreqGHz != c.freq {
			t.Errorf("%s: Table 1 parameters wrong: %+v", c.tech.Name, c.tech)
		}
		if got := c.tech.AccessTime6T * SecondsToPico; math.Abs(got-c.access) > 0.5 {
			t.Errorf("%s access time = %vps, want %v", c.tech.Name, got, c.access)
		}
		if got := c.tech.LeakagePower6T * WattsToMilli; math.Abs(got-c.leakPwr) > 0.05 {
			t.Errorf("%s leakage = %vmW, want %v", c.tech.Name, got, c.leakPwr)
		}
	}
}

func TestCyclePeriod(t *testing.T) {
	if got := Node32.CyclePS(); math.Abs(got-232.56) > 0.1 {
		t.Errorf("32nm cycle = %vps", got)
	}
	if got := Node32.CycleSeconds(); math.Abs(got-232.56e-12) > 1e-13 {
		t.Errorf("32nm cycle = %vs", got)
	}
	// Nominal retention in cycles: 5.8us * 4.3GHz = 24940.
	if got := Node32.RetentionCycles(); math.Abs(got-24940) > 1 {
		t.Errorf("32nm retention cycles = %v", got)
	}
}

func TestVthEff(t *testing.T) {
	if got := Node32.VthEff(Nominal); got != Node32.Vth0 {
		t.Errorf("nominal VthEff = %v", got)
	}
	// Positive dopant deviation raises Vth.
	if Node32.VthEff(Device{DVth: 0.1}) <= Node32.Vth0 {
		t.Error("positive DVth should raise VthEff")
	}
	// Longer channel raises Vth via SCE.
	if Node32.VthEff(Device{DL: 0.05}) <= Node32.Vth0 {
		t.Error("positive DL should raise VthEff")
	}
}

func TestDriveFactorNominal(t *testing.T) {
	if got := Node32.DriveFactor(Nominal); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal drive factor = %v", got)
	}
}

func TestDriveFactorMonotonicity(t *testing.T) {
	// Higher Vth → weaker drive; longer channel → weaker drive.
	weakVth := Node32.DriveFactor(Device{DVth: 0.2})
	weakL := Node32.DriveFactor(Device{DL: 0.1})
	strong := Node32.DriveFactor(Device{DVth: -0.2})
	if weakVth >= 1 || weakL >= 1 {
		t.Errorf("weak devices should drive < 1: vth=%v L=%v", weakVth, weakL)
	}
	if strong <= 1 {
		t.Errorf("strong device should drive > 1: %v", strong)
	}
}

func TestDriveFactorFloor(t *testing.T) {
	// A device whose threshold exceeds the gate drive must yield a tiny
	// positive factor, never zero or negative.
	f := Node32.DriveFactorAt(Device{DVth: 10}, 0.2)
	if f <= 0 {
		t.Errorf("drive factor not positive: %v", f)
	}
}

func TestLeakFactorNominalAndMonotone(t *testing.T) {
	if got := Node32.LeakFactor(Nominal); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal leak factor = %v", got)
	}
	if Node32.LeakFactor(Device{DVth: 0.1}) >= 1 {
		t.Error("higher Vth should leak less")
	}
	if Node32.LeakFactor(Device{DVth: -0.1}) <= 1 {
		t.Error("lower Vth should leak more")
	}
	// Shorter channel leaks more (DIBL / roll-off).
	if Node32.LeakFactor(Device{DL: -0.05}) <= 1 {
		t.Error("shorter channel should leak more")
	}
}

func TestLeakFactorExponentialSpread(t *testing.T) {
	// The paper cites a 5X leakage spread from Vth variation (§2.1).
	// A ±2σ severe Vth swing (±30% of Vth0) must span well over 5X.
	hi := Node32.LeakFactor(Device{DVth: -0.30})
	lo := Node32.LeakFactor(Device{DVth: +0.30})
	if hi/lo < 5 {
		t.Errorf("leakage spread over ±2σ severe = %v, want > 5", hi/lo)
	}
}

func TestQuickDriveFactorBounded(t *testing.T) {
	f := func(dl, dvth float64) bool {
		d := Device{DL: math.Mod(dl, 0.5), DVth: math.Mod(dvth, 1)}
		g := Node32.DriveFactor(d)
		return g > 0 && !math.IsNaN(g) && !math.IsInf(g, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVthMonotoneInDVth(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 1), math.Mod(b, 1)
		if a > b {
			a, b = b, a
		}
		return Node32.VthEff(Device{DVth: a}) <= Node32.VthEff(Device{DVth: b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
