package circuit

import "math"

// SRAM6T models the paper's baseline static cell. The physical cell has
// eight transistors (two single-ended read ports and one differential
// write port, §3.1) but the paper calls it "6T"; we keep that name. Size
// is the linear device-sizing factor: 1 for the 1X cell, 2 for the 2X
// cell whose devices have twice the width and length.
type SRAM6T struct {
	Size float64 //unit:dimensionless
}

var (
	// SRAM1X is the minimum-size cell from the commercial design library.
	SRAM1X = SRAM6T{Size: 1}
	// SRAM2X is the up-sized comparison cell of §3.1.
	SRAM2X = SRAM6T{Size: 2}
)

// VthSigmaScale returns the factor by which random-dopant ΔVth shrinks
// for this cell size. Pelgrom's law gives σVth ∝ 1/sqrt(W·L) (halved at
// 2X); the doubled gate length additionally suppresses line-edge-
// roughness-induced Vth spread, modelled together as Size^-1.5.
// Systematic gate-length deviation is lithographic and does not shrink.
//
//unit:result dimensionless
func (c SRAM6T) VthSigmaScale() float64 { return math.Pow(c.Size, -1.5) }

// scale returns d with its random-dopant component shrunk per cell size.
func (c SRAM6T) scale(d Device) Device {
	return Device{DL: d.DL, DVth: d.DVth * c.VthSigmaScale()}
}

// ReadDelayFactor returns the cell's bitline-discharge delay relative to
// a nominal 1X cell, for the given read-path devices (the access
// transistor and the pull-down driver conduct in series; the slower of
// the two dominates, modelled as a harmonic combination of their drive
// strengths).
//
//unit:result dimensionless
func (c SRAM6T) ReadDelayFactor(t Tech, access, driver Device) float64 {
	ga := t.DriveFactor(c.scale(access))
	gd := t.DriveFactor(c.scale(driver))
	// Series conduction: conductances combine harmonically; normalize so
	// two nominal devices give factor 1.
	g := 2 / (1/ga + 1/gd)
	return 1 / g
}

// Unstable reports whether the cell's read is pseudo-destructive:
// random-dopant mismatch between the cross-coupled storage devices
// exceeds the static-noise-margin budget (§2.1). The calibrated
// FlipThreshold yields the paper's ≈0.4 % bit-flip rate at 32 nm under
// typical variation for the 1X cell.
func (c SRAM6T) Unstable(t Tech, keepA, keepB Device) bool {
	mismatch := math.Abs(t.VthEff(c.scale(keepA)) - t.VthEff(c.scale(keepB)))
	return mismatch > t.FlipThreshold
}

// LeakFactor returns the cell's static leakage relative to a nominal 1X
// cell. A 6T cell has three strong leakage paths, each gated by a single
// "off" transistor (§2.1, Fig. 2a); we evaluate the three path devices
// independently. The 2X cell leaks twice as much per path (double W at
// double L keeps W/L, but doubled W raises the absolute off current of
// the wider device; we model leakage ∝ W/L · exp(-Vth/n·vT) so sizing is
// leakage-neutral per path before the Pelgrom-narrowed Vth spread).
//
//unit:result dimensionless
func (c SRAM6T) LeakFactor(t Tech, p1, p2, p3 Device) float64 {
	return (t.LeakFactor(c.scale(p1)) + t.LeakFactor(c.scale(p2)) + t.LeakFactor(c.scale(p3))) / 3
}

// ArrayAccessTime converts the worst cell read-delay factor in an array
// plus the periphery corner into an absolute L1 array access time. The
// BitlineFrac share of the nominal path tracks the worst cell; the rest
// (decoder, wordline drivers, sense amps, output mux) tracks the
// periphery device corner of the region.
//
//unit:param worstCellDelayFactor dimensionless
//unit:result seconds
func ArrayAccessTime(t Tech, worstCellDelayFactor float64, periphery Device) float64 {
	per := math.Pow(t.DriveFactor(periphery), -0.3)
	return t.AccessTime6T * ((1-t.BitlineFrac)*per + t.BitlineFrac*worstCellDelayFactor)
}

// FrequencyFactor returns the chip's achievable frequency relative to
// nominal given its worst array access time: the L1 is on the critical
// path (one pipeline cycle is reserved for the array access, §3.2), so
// the clock stretches with the slowest cell.
//
//unit:param worstAccessTime seconds
//unit:result dimensionless
func FrequencyFactor(t Tech, worstAccessTime float64) float64 {
	if worstAccessTime <= 0 {
		return 1
	}
	f := t.AccessTime6T / worstAccessTime
	if f > 1 {
		// A lucky chip cannot run faster than the design frequency: the
		// rest of the pipeline is designed for the nominal clock.
		f = 1
	}
	return f
}
