package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReadDelayFactorNominal(t *testing.T) {
	for _, cell := range []SRAM6T{SRAM1X, SRAM2X} {
		if got := cell.ReadDelayFactor(Node32, Nominal, Nominal); math.Abs(got-1) > 1e-12 {
			t.Errorf("%vX nominal delay factor = %v", cell.Size, got)
		}
	}
}

func TestReadDelayFactorMonotone(t *testing.T) {
	weak := SRAM1X.ReadDelayFactor(Node32, Device{DVth: 0.2}, Nominal)
	if weak <= 1 {
		t.Errorf("weak access should slow the read: %v", weak)
	}
	// Series path: either device being weak slows the read.
	weakDriver := SRAM1X.ReadDelayFactor(Node32, Nominal, Device{DVth: 0.2})
	if weakDriver <= 1 {
		t.Errorf("weak driver should slow the read: %v", weakDriver)
	}
}

func TestReadDelaySizingBenefit(t *testing.T) {
	// The same raw variation draw hurts the 2X cell less (Pelgrom).
	d := Device{DVth: 0.3}
	d1 := SRAM1X.ReadDelayFactor(Node32, d, d)
	d2 := SRAM2X.ReadDelayFactor(Node32, d, d)
	if d2 >= d1 {
		t.Errorf("2X cell should be less sensitive: 1X=%v 2X=%v", d1, d2)
	}
}

func TestUnstableThreshold(t *testing.T) {
	// Mismatch below the threshold: stable. Well above: unstable.
	small := Device{DVth: 0.05}
	if SRAM1X.Unstable(Node32, small, Device{DVth: -0.05}) {
		t.Error("30mV mismatch should be stable at 32nm")
	}
	big := Device{DVth: 0.3}
	if !SRAM1X.Unstable(Node32, big, Device{DVth: -0.3}) {
		t.Error("180mV mismatch should be unstable at 32nm")
	}
}

func TestUnstableSizingBenefit(t *testing.T) {
	// A draw that flips the 1X cell can be absorbed by the 2X cell.
	a, b := Device{DVth: 0.25}, Device{DVth: -0.25}
	if !SRAM1X.Unstable(Node32, a, b) {
		t.Fatal("test draw should flip the 1X cell")
	}
	if SRAM2X.Unstable(Node32, a, b) {
		t.Error("2X cell should absorb the same draw")
	}
}

func TestLeakFactorThreePaths(t *testing.T) {
	if got := SRAM1X.LeakFactor(Node32, Nominal, Nominal, Nominal); math.Abs(got-1) > 1e-12 {
		t.Errorf("nominal cell leak = %v", got)
	}
	// One leaky path raises the mean.
	if SRAM1X.LeakFactor(Node32, Device{DVth: -0.3}, Nominal, Nominal) <= 1 {
		t.Error("one leaky path should raise cell leakage")
	}
}

func TestArrayAccessTimeNominal(t *testing.T) {
	got := ArrayAccessTime(Node32, 1, Nominal)
	if math.Abs(got-Node32.AccessTime6T) > 1e-15 {
		t.Errorf("nominal array access = %v, want %v", got, Node32.AccessTime6T)
	}
}

func TestArrayAccessTimeSlowCell(t *testing.T) {
	// A 2x-slow worst cell stretches only the bitline share of the path.
	got := ArrayAccessTime(Node32, 2, Nominal)
	want := Node32.AccessTime6T * (1 + Node32.BitlineFrac)
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("slow-cell access = %v, want %v", got, want)
	}
}

func TestFrequencyFactor(t *testing.T) {
	if got := FrequencyFactor(Node32, Node32.AccessTime6T); got != 1 {
		t.Errorf("nominal frequency factor = %v", got)
	}
	if got := FrequencyFactor(Node32, 2*Node32.AccessTime6T); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("2x-slow frequency factor = %v", got)
	}
	// Fast chips are capped at the design frequency.
	if got := FrequencyFactor(Node32, Node32.AccessTime6T/2); got != 1 {
		t.Errorf("fast chip should cap at 1, got %v", got)
	}
	if got := FrequencyFactor(Node32, 0); got != 1 {
		t.Errorf("degenerate access time should yield 1, got %v", got)
	}
}

func TestQuickReadDelayPositive(t *testing.T) {
	f := func(a, b float64) bool {
		d1 := Device{DVth: math.Mod(a, 1)}
		d2 := Device{DVth: math.Mod(b, 1)}
		df := SRAM1X.ReadDelayFactor(Node32, d1, d2)
		return df > 0 && !math.IsNaN(df)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnstableSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		da := Device{DVth: math.Mod(a, 1)}
		db := Device{DVth: math.Mod(b, 1)}
		return SRAM1X.Unstable(Node32, da, db) == SRAM1X.Unstable(Node32, db, da)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
