package circuit

import (
	"math"

	"tdcache/internal/stats"
	"tdcache/internal/variation"
)

// Geometry describes the physical organization of the 64 KB L1 data
// cache (§3.2): 1024 lines of 512 bits, stored in 8 sub-arrays of
// 256×256 bits. Arrays are paired; each pair's 64 shared sense
// amplifiers assemble the 512-bit blocks, and a line's bits straddle the
// two arrays of its pair.
//
// For within-die variation the floorplan is discretized into TileCols ×
// TileRows correlation tiles (finer than the 8 sub-arrays: each
// sub-array column is split into 16-line tile rows, following the §3.1
// observation that gate length is strongly correlated only within small
// sub-array regions).
type Geometry struct {
	Lines        int // cache lines
	CellsPerLine int // data bits per line
	TagBits      int // tag/status cells per line (share the line's fate)
	TileCols     int // variation-field columns (= physical sub-arrays)
	TileRows     int // variation-field rows per column
}

// L1D is the paper's L1 data-cache geometry.
var L1D = Geometry{
	Lines:        1024,
	CellsPerLine: 512,
	TagBits:      32,
	TileCols:     8,
	TileRows:     16,
}

// LinesPerTileRow returns how many consecutive lines share one tile row.
func (g Geometry) LinesPerTileRow() int {
	perPair := g.Lines / (g.TileCols / 2)
	return perPair / g.TileRows
}

// LineTiles returns the two variation tiles holding the line's bits: the
// line lives in one array pair (two adjacent columns) at a tile row
// determined by its wordline.
func (g Geometry) LineTiles(line int) (x0, x1, y int) {
	pairs := g.TileCols / 2
	perPair := g.Lines / pairs
	pair := line / perPair
	row := line % perPair
	y = row / g.LinesPerTileRow()
	return 2 * pair, 2*pair + 1, y
}

// Transistor slots within a cell for per-transistor Vth draws.
const (
	slotT1    uint8 = iota // 3T1D write access / 6T read access
	slotT2                 // 3T1D storage read / 6T read driver
	slotT3                 // 3T1D read wordline
	slotKeepA              // 6T cross-coupled keeper A
	slotKeepB              // 6T cross-coupled keeper B
)

// ChipEval evaluates circuit-level figures of merit for one sampled chip.
// It is stateless and safe for concurrent use across chips.
type ChipEval struct {
	Tech Tech
	Geom Geometry
	Chip *variation.Chip
	// Backend selects the cell-physics model producing the retention
	// map and cell-leakage figures; nil means the reference 3T1D model
	// (Backend3T1D). The 6T SRAM figures (SRAM*) are the comparison
	// baseline and stay backend-independent.
	Backend CellBackend
}

// ActiveBackend returns the effective cell backend (Backend3T1D when
// the field is unset). Both candidates are pre-bound package values,
// so the returned interface never allocates.
func (e ChipEval) ActiveBackend() CellBackend {
	if e.Backend != nil {
		return e.Backend
	}
	return Backend3T1D
}

// NewChipEval bundles a technology, geometry, and chip sample.
func NewChipEval(t Tech, g Geometry, c *variation.Chip) ChipEval {
	return ChipEval{Tech: t, Geom: g, Chip: c}
}

// cellID gives every cell of the cache a unique index for hash draws.
func (e ChipEval) cellID(line, cell int) uint64 {
	return uint64(line)*uint64(e.Geom.CellsPerLine+e.Geom.TagBits) + uint64(cell)
}

// cellDevice materializes one transistor's process corner.
func (e ChipEval) cellDevice(line, cell int, slot uint8, tileX, tileY int) Device {
	return Device{
		DL:   e.Chip.DeltaL(tileX, tileY),
		DVth: e.Chip.DeltaVth(e.cellID(line, cell), slot),
	}
}

// LineRetention returns the retention time (seconds) of one cache line
// under the active cell backend: the minimum retention over its data
// and tag cells (§4.3.1 — a line's retention is defined by its worst
// cell so no data is ever lost during it).
//
//unit:result seconds
func (e ChipEval) LineRetention(line int) float64 {
	return e.ActiveBackend().LineRetention(e, line)
}

// lineRetention3T1D is the 3T1D backend's line kernel: a hoisted form
// algebraically identical to Tech.RetentionTime (asserted by tests)
// because this is the hot path of every Monte-Carlo study.
//
//unit:result seconds
func (e ChipEval) lineRetention3T1D(line int) float64 {
	x0, x1, y := e.Geom.LineTiles(line)
	p0 := e.tileParams(x0, y)
	p1 := e.tileParams(x1, y)
	min := math.Inf(1)
	total := e.Geom.CellsPerLine + e.Geom.TagBits
	half := e.Geom.CellsPerLine / 2
	sigma := e.Chip.Scenario.SigmaVth
	seed := e.Chip.Seed()
	for cell := 0; cell < total; cell++ {
		p := &p0
		if cell >= half && cell < e.Geom.CellsPerLine {
			p = &p1 // second half of the data bits lives in the pair's other array
		}
		id := e.cellID(line, cell)
		var g1, g2, g3 float64
		if sigma != 0 {
			g1 = sigma * stats.HashGaussian(seed, stats.Mix64(id, uint64(slotT1)))
			g2 = sigma * stats.HashGaussian(seed, stats.Mix64(id, uint64(slotT2)))
			g3 = sigma * stats.HashGaussian(seed, stats.Mix64(id, uint64(slotT3)))
		}
		if r := e.cellRetention(p, g1, g2, g3); r < min {
			min = r
			if min == 0 {
				break // a dead cell kills the whole line; no need to keep scanning
			}
		}
	}
	return min
}

// tileParams holds the per-tile (systematic) quantities hoisted out of
// the per-cell retention kernel.
type tileParams struct {
	dL       float64 //unit:dimensionless // gate-length deviation of the tile
	vthShift float64 //unit:volts // SCE·dL·Vth0, added to every device threshold
	ln1pdL   float64 // ln(1+dL)
	invDecay float64 //unit:seconds/volts // T0 / (margin0 · (1+dL)^-1), Vth part applied per cell
	vreqNom  float64 //unit:volts // nominal required storage level
	overNom  float64 //unit:volts // nominal T2 gate overdrive at the crossing
	lnOver3  float64 // ln of nominal T3 overdrive, for the drive-factor log
}

func (e ChipEval) tileParams(tx, ty int) tileParams {
	t := e.Tech
	dL := e.Chip.DeltaL(tx, ty)
	v0n := t.nominalStoredLevel()
	vreqNom := v0n * (1 - t.MarginFrac)
	overNom := t.DiodeBoost*vreqNom - t.Vth0
	if overNom < 0.05 {
		overNom = 0.05
	}
	return tileParams{
		dL:       dL,
		vthShift: t.SCE * dL * t.Vth0,
		ln1pdL:   math.Log1p(dL),
		invDecay: t.Retention3T1D / (v0n * t.MarginFrac) * (1 + dL),
		vreqNom:  vreqNom,
		overNom:  overNom,
		lnOver3:  math.Log(t.Vdd - t.Vth0),
	}
}

// cellRetention is the hoisted equivalent of Tech.RetentionTime for a
// cell whose three transistors share a tile corner p and have i.i.d.
// threshold deviations g1..g3 (already scaled by σVth, as ΔVth/Vth0).
//
//unit:param g1 dimensionless
//unit:param g2 dimensionless
//unit:param g3 dimensionless
//unit:result seconds
func (e ChipEval) cellRetention(p *tileParams, g1, g2, g3 float64) float64 {
	t := e.Tech
	// T1: stored level and decay corner.
	vth1 := t.Vth0*(1+g1) + p.vthShift
	v0 := t.Vdd - vth1
	if v0 <= 0 {
		return 0
	}
	// T3 drive factor in log space: α·ln(over/overNom) - ln(1+dL).
	over3 := t.Vdd - (t.Vth0*(1+g3) + p.vthShift)
	if over3 < 1e-3 {
		over3 = 1e-3
	}
	lnDF3 := t.Alpha*(math.Log(over3)-p.lnOver3) - p.ln1pdL
	// Required-level scale: (DF3^-T3Weight · (1+dL))^(1/α).
	scale := math.Exp((-t.T3Weight*lnDF3 + p.ln1pdL) / t.Alpha)
	vreq := (t.Vth0*(1+g2) + p.vthShift + p.overNom*scale) / t.DiodeBoost
	margin := v0 - vreq
	if margin <= 0 {
		return 0
	}
	// Decay: margin0/T0 · retLeakFactor(T1); retLeakFactor's (1+dL) is
	// folded into invDecay, leaving the Vth exponential per cell.
	retLeak := math.Exp(-(vth1 - t.Vth0) / t.RetLeakSens)
	return margin * p.invDecay / retLeak
}

// RetentionMap returns the retention time of every line, in seconds,
// produced by the active cell backend. The interface is crossed once
// per chip; the per-line loop runs inside the backend.
//
//unit:result seconds
func (e ChipEval) RetentionMap() []float64 {
	return e.ActiveBackend().RetentionMap(e)
}

// CellLeakageFactor returns the active backend's cache leakage relative
// to the golden 6T design (the Fig. 7 normalization).
//
//unit:result dimensionless
func (e ChipEval) CellLeakageFactor() float64 {
	return e.ActiveBackend().LeakageFactor(e)
}

// CacheRetention returns the whole-cache retention under the global
// scheme: the minimum line retention (§4.3 — "the memory cell with the
// shortest retention time determines the retention time of the entire
// structure").
//
//unit:result seconds
func (e ChipEval) CacheRetention() float64 {
	min := math.Inf(1)
	for l := 0; l < e.Geom.Lines; l++ {
		if r := e.LineRetention(l); r < min {
			min = r
		}
	}
	return min
}

// SRAMWorstAccessTime scans every cell of the cache and returns the
// slowest array access time (seconds) for the given 6T cell variant.
// This is the exact (sampled) evaluation; SRAMWorstAccessTimeFast is the
// extreme-value approximation used inside large Monte-Carlo sweeps.
//
//unit:result seconds
func (e ChipEval) SRAMWorstAccessTime(cell SRAM6T) float64 {
	worst := 0.0
	for line := 0; line < e.Geom.Lines; line++ {
		x0, x1, y := e.Geom.LineTiles(line)
		total := e.Geom.CellsPerLine + e.Geom.TagBits
		half := e.Geom.CellsPerLine / 2
		for c := 0; c < total; c++ {
			tx := x0
			if c >= half && c < e.Geom.CellsPerLine {
				tx = x1
			}
			access := e.cellDevice(line, c, slotT1, tx, y)
			driver := e.cellDevice(line, c, slotT2, tx, y)
			df := cell.ReadDelayFactor(e.Tech, access, driver)
			at := ArrayAccessTime(e.Tech, df, Device{DL: e.Chip.DeltaL(tx, y)})
			if at > worst {
				worst = at
			}
		}
	}
	return worst
}

// SRAMWorstAccessTimeFast approximates SRAMWorstAccessTime using
// extreme-value theory: within each correlation tile the worst cell's
// random-dopant corner is the expected maximum of the tile's i.i.d.
// draws plus a Gumbel fluctuation (hash-seeded per tile so the result is
// deterministic per chip). Agreement with the exact scan is verified in
// tests; the fast path makes 1000-chip distribution studies cheap.
//
//unit:result seconds
func (e ChipEval) SRAMWorstAccessTimeFast(cell SRAM6T) float64 {
	g := e.Geom
	cellsPerTile := g.Lines / (g.TileCols / 2) / g.TileRows * (g.CellsPerLine + g.TagBits) / 2
	// Each cell contributes two read-path transistors; the series delay
	// is dominated by the weaker, so the tile's worst cell behaves like
	// the max of ~2n Gaussians applied to one device.
	m := float64(2 * cellsPerTile)
	am := math.Sqrt(2 * math.Log(m))
	am -= (math.Log(math.Log(m)) + math.Log(4*math.Pi)) / (2 * am)
	bm := math.Sqrt(2 * math.Log(m))
	worst := 0.0
	sigma := e.Chip.Scenario.SigmaVth * cell.VthSigmaScale()
	for tx := 0; tx < g.TileCols; tx++ {
		for ty := 0; ty < g.TileRows; ty++ {
			// Deterministic Gumbel fluctuation for this tile.
			u := stats.HashUniform(e.Chip.Seed()^0xfa57, uint64(tx*64+ty))
			if u < 1e-12 {
				u = 1e-12
			}
			gum := -math.Log(-math.Log(u))
			dvWorst := sigma * (am + gum/bm)
			dev := Device{DL: e.Chip.DeltaL(tx, ty), DVth: dvWorst / cell.VthSigmaScale()}
			df := cell.ReadDelayFactor(e.Tech, dev, dev)
			at := ArrayAccessTime(e.Tech, df, Device{DL: e.Chip.DeltaL(tx, ty)})
			if at > worst {
				worst = at
			}
		}
	}
	return worst
}

// SRAMFrequencyFactor returns the chip's normalized frequency (≤1) for
// the given cell variant using the fast worst-cell evaluation.
//
//unit:result dimensionless
func (e ChipEval) SRAMFrequencyFactor(cell SRAM6T) float64 {
	return FrequencyFactor(e.Tech, e.SRAMWorstAccessTimeFast(cell))
}

// SRAMUnstableFraction returns the expected fraction of 6T cells whose
// read is pseudo-destructive, computed analytically: the mismatch of the
// two cross-coupled keepers is N(0, 2·(σVth·Vth0·scale)²) and the cell
// flips when |mismatch| exceeds the threshold.
//
//unit:result dimensionless
func (e ChipEval) SRAMUnstableFraction(cell SRAM6T) float64 {
	sigma := e.Chip.Scenario.SigmaVth * e.Tech.Vth0 * cell.VthSigmaScale()
	if sigma == 0 {
		return 0
	}
	sd := sigma * math.Sqrt2
	return math.Erfc(e.Tech.FlipThreshold / (sd * math.Sqrt2))
}

// SRAMLineFailureProbability returns the probability that a line of n
// cells contains at least one unstable cell — the paper's §2.1 point
// that 256-bit lines fail with 1-(1-p)^256 probability, which defeats
// line-level redundancy.
//
//unit:result dimensionless
func (e ChipEval) SRAMLineFailureProbability(cell SRAM6T, n int) float64 {
	p := e.SRAMUnstableFraction(cell)
	return 1 - math.Pow(1-p, float64(n))
}

// iidLeakMultiplier is E[exp(-ΔVth·Vth0/s)] over the random-dopant
// distribution: the lognormal mean shift that i.i.d. Vth noise adds to
// every chip's leakage.
//
//unit:param sigmaScale dimensionless
//unit:result dimensionless
func (e ChipEval) iidLeakMultiplier(sigmaScale float64) float64 {
	s := e.Chip.Scenario.SigmaVth * e.Tech.Vth0 * sigmaScale
	return math.Exp(s * s / (2 * e.Tech.SubVTSlope * e.Tech.SubVTSlope))
}

// SRAMLeakageFactor returns the chip's total 6T cache leakage relative
// to the golden (no-variation) design: the tile-systematic corner factor
// averaged over the floorplan times the analytic i.i.d. multiplier.
//
//unit:result dimensionless
func (e ChipEval) SRAMLeakageFactor(cell SRAM6T) float64 {
	sum := 0.0
	n := 0
	for tx := 0; tx < e.Geom.TileCols; tx++ {
		for ty := 0; ty < e.Geom.TileRows; ty++ {
			d := Device{DL: e.Chip.DeltaL(tx, ty)}
			sum += e.Tech.LeakFactor(d)
			n++
		}
	}
	return sum / float64(n) * e.iidLeakMultiplier(cell.VthSigmaScale())
}

// Leakage3T1DFactor returns the chip's 3T1D cache leakage relative to
// the *golden 6T* design (the Fig. 7 normalization).
//
//unit:result dimensionless
func (e ChipEval) Leakage3T1DFactor() float64 {
	sum := 0.0
	n := 0
	for tx := 0; tx < e.Geom.TileCols; tx++ {
		for ty := 0; ty < e.Geom.TileRows; ty++ {
			d := Device{DL: e.Chip.DeltaL(tx, ty)}
			sum += e.Tech.LeakFactor(d)
			n++
		}
	}
	return Leak3T1DRatio * sum / float64(n) * e.iidLeakMultiplier(1)
}
