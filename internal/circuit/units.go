package circuit

// Named unit-conversion constants. The unitflow analyzer treats
// prefixed units (nanoseconds, gigahertz, ...) as bases independent of
// their SI parent, so crossing between them must go through one of
// these constants — a bare "* 1e9" is flagged as a magic scale factor.
// Each constant carries the unit of the conversion itself, which makes
// the arithmetic dimensionally closed: seconds × SecondsToNano =
// nanoseconds.
const (
	// SecondsToMicro converts a time in seconds to microseconds.
	SecondsToMicro = 1e6 //unit:microseconds/seconds
	// SecondsToNano converts a time in seconds to nanoseconds.
	SecondsToNano = 1e9 //unit:nanoseconds/seconds
	// SecondsToPico converts a time in seconds to picoseconds.
	SecondsToPico = 1e12 //unit:picoseconds/seconds
	// MicroToSeconds converts a time in microseconds to seconds.
	MicroToSeconds = 1e-6 //unit:seconds/microseconds
	// NanoToSeconds converts a time in nanoseconds to seconds.
	NanoToSeconds = 1e-9 //unit:seconds/nanoseconds
	// PicoToSeconds converts a time in picoseconds to seconds.
	PicoToSeconds = 1e-12 //unit:seconds/picoseconds
	// WattsToMilli converts a power in watts to milliwatts.
	WattsToMilli = 1e3 //unit:milliwatts/watts
	// HertzPerGigahertz converts a frequency in gigahertz to hertz
	// (= 1/seconds), e.g. when turning per-cycle energy at FreqGHz
	// into power.
	HertzPerGigahertz = 1e9 //unit:hertz/gigahertz
	// GigahertzPeriodSeconds is the period of a 1 GHz clock in seconds;
	// dividing it by a frequency in gigahertz yields the period in
	// seconds.
	GigahertzPeriodSeconds = 1e-9 //unit:seconds*gigahertz
	// GigahertzPeriodPicoseconds is the period of a 1 GHz clock in
	// picoseconds.
	GigahertzPeriodPicoseconds = 1000 //unit:picoseconds*gigahertz
	// OneSecond is the SI reference second. Dividing a time in seconds
	// by it erases the dimension on purpose — the idiom for feeding a
	// physical quantity into unit-blind sinks like digest hashing.
	OneSecond = 1.0 //unit:seconds
)
