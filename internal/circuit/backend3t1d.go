package circuit

import "tdcache/internal/variation"

// Backend3T1D is the reference CellBackend: the paper's 3T1D dynamic
// cell, delegating to the calibrated decay model in cell3t1d.go and the
// hoisted Monte-Carlo kernel in chipeval.go. It is a zero-size value
// pre-bound into a package-level interface variable, so handing it to a
// ChipEval or a montecarlo.Options never allocates.
var Backend3T1D CellBackend = backend3T1D{}

func init() { RegisterBackend(Backend3T1D) }

type backend3T1D struct{}

// Name implements CellBackend.
func (backend3T1D) Name() string { return DefaultBackendName }

// NominalRetention is the calibrated zero-deviation retention (§2.2).
//
//unit:result seconds
func (backend3T1D) NominalRetention(t Tech) float64 { return t.Retention3T1D }

// LineRetention delegates to the hoisted hot kernel.
//
//unit:result seconds
func (backend3T1D) LineRetention(e ChipEval, line int) float64 {
	return e.lineRetention3T1D(line)
}

// RetentionMap evaluates every line through the hoisted kernel. The
// per-line loop runs inside the backend so the interface is crossed
// once per chip, not once per line.
//
//unit:result seconds
func (backend3T1D) RetentionMap(e ChipEval) []float64 {
	m := make([]float64, e.Geom.Lines)
	for l := range m {
		m[l] = e.lineRetention3T1D(l)
	}
	return m
}

// AccessTime is the Fig. 4 curve for the requested corner.
//
//unit:param elapsed seconds
//unit:result seconds
func (backend3T1D) AccessTime(t Tech, c Corner, elapsed float64) float64 {
	return t.AccessTime3T1D(cornerCell3T1D(c), elapsed)
}

// LeakageFactor is the Fig. 7 normalization versus the golden 6T.
//
//unit:result dimensionless
func (backend3T1D) LeakageFactor(e ChipEval) float64 { return e.Leakage3T1DFactor() }

// Policy implements CellBackend: the §4.3.1 per-chip adaptive counter
// discipline.
func (backend3T1D) Policy() Policy {
	return Policy{Kind: PolicyRefreshCounter, RetentionClasses: 1}
}

// DigestParams implements CellBackend. The 3T1D model is configured
// entirely by circuit.Tech, which the params digest already hashes
// field by field, so the backend contributes nothing extra — which is
// also what keeps pre-refactor 3T1D digests byte-identical.
func (backend3T1D) DigestParams() []BackendParam { return nil }

// cornerCell3T1D mirrors Fig. 4's corner construction: the read path
// (T2, T3) displaced by ±1σ of typical variation.
func cornerCell3T1D(c Corner) Cell3T1D {
	sl := variation.Typical.SigmaLWithin
	sv := variation.Typical.SigmaVth
	switch c {
	case CornerNominal:
		return Nominal3T1D
	case CornerWeak:
		return Cell3T1D{
			T2: Device{DL: sl, DVth: sv},
			T3: Device{DL: sl, DVth: sv},
		}
	case CornerStrong:
		return Cell3T1D{
			T2: Device{DL: -sl, DVth: -sv},
			T3: Device{DL: -sl, DVth: -sv},
		}
	}
	return Nominal3T1D
}
