package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNominalRetentionAnchors(t *testing.T) {
	// The nominal cell retention must equal the node's anchor (Fig. 4:
	// ~5.8 µs at 32 nm; §4.1 quotes ≈6000 ns for the cache).
	for _, tech := range Nodes {
		got := tech.RetentionTime(Nominal3T1D)
		if math.Abs(got-tech.Retention3T1D)/tech.Retention3T1D > 1e-9 {
			t.Errorf("%s nominal retention = %v, want %v", tech.Name, got, tech.Retention3T1D)
		}
	}
}

func TestStoredLevelDegraded(t *testing.T) {
	// The stored "1" is degraded by the write transistor's threshold.
	v0 := Node32.StorageLevel(Nominal3T1D, 0)
	if math.Abs(v0-(Node32.Vdd-Node32.Vth0)) > 1e-12 {
		t.Errorf("fresh stored level = %v", v0)
	}
}

func TestStorageDecaysMonotonically(t *testing.T) {
	prev := math.Inf(1)
	for _, elapsed := range []float64{0, 1e-6, 2e-6, 4e-6, 8e-6, 16e-6} {
		v := Node32.StorageLevel(Nominal3T1D, elapsed)
		if v > prev {
			t.Fatalf("storage level rose at %v: %v > %v", elapsed, v, prev)
		}
		if v < 0 {
			t.Fatalf("storage level negative at %v: %v", elapsed, v)
		}
		prev = v
	}
	// Eventually fully discharged.
	if v := Node32.StorageLevel(Nominal3T1D, 1); v != 0 {
		t.Errorf("storage should be empty after 1s, got %v", v)
	}
}

func TestAccessTimeCurveShape(t *testing.T) {
	// Fig. 4: fresh 3T1D access beats the 6T array; the curve crosses the
	// 6T line at the retention time and keeps growing beyond it.
	tech := Node32
	ret := tech.RetentionTime(Nominal3T1D)
	fresh := tech.AccessTime3T1D(Nominal3T1D, 0)
	if fresh >= tech.AccessTime6T {
		t.Errorf("fresh 3T1D access %v should beat 6T %v", fresh, tech.AccessTime6T)
	}
	atRet := tech.AccessTime3T1D(Nominal3T1D, ret)
	if math.Abs(atRet-tech.AccessTime6T)/tech.AccessTime6T > 0.02 {
		t.Errorf("access at retention = %v, want ≈ %v", atRet, tech.AccessTime6T)
	}
	after := tech.AccessTime3T1D(Nominal3T1D, ret*1.5)
	if after <= tech.AccessTime6T {
		t.Errorf("access past retention = %v should exceed 6T %v", after, tech.AccessTime6T)
	}
	// Monotone non-decreasing over time.
	prev := 0.0
	for i := 0; i <= 20; i++ {
		at := tech.AccessTime3T1D(Nominal3T1D, float64(i)*ret/10)
		if at < prev {
			t.Fatalf("access time decreased at step %d: %v < %v", i, at, prev)
		}
		prev = at
	}
}

func TestAccessTimeCapped(t *testing.T) {
	// Long after the charge is gone the access time must remain finite.
	at := Node32.AccessTime3T1D(Nominal3T1D, 1)
	if math.IsInf(at, 0) || math.IsNaN(at) {
		t.Fatalf("access time not finite: %v", at)
	}
	if at > Node32.AccessTime6T*100 {
		t.Errorf("access time cap not applied: %v", at)
	}
}

func TestWeakCellShorterRetention(t *testing.T) {
	// Fig. 4: weaker read-path devices shift the curve left. A +1σ
	// typical corner on the read path should land in the 4-5.2 µs band
	// at 32 nm (paper shows ≈4 µs versus 5.8 µs nominal).
	weak := Cell3T1D{
		T2: Device{DL: 0.05, DVth: 0.10},
		T3: Device{DL: 0.05, DVth: 0.10},
	}
	got := Node32.RetentionTime(weak)
	if got >= Node32.Retention3T1D {
		t.Fatalf("weak cell retention %v not below nominal", got)
	}
	if got < 3.2e-6 || got > 5.4e-6 {
		t.Errorf("weak cell retention = %v, want in [3.2e-6, 5.4e-6]", got)
	}
}

func TestStrongCellLongerRetention(t *testing.T) {
	strong := Cell3T1D{
		T2: Device{DL: -0.05, DVth: -0.10},
		T3: Device{DL: -0.05, DVth: -0.10},
	}
	if got := Node32.RetentionTime(strong); got <= Node32.Retention3T1D {
		t.Errorf("strong cell retention = %v, want above nominal", got)
	}
}

func TestDeadCellZeroRetention(t *testing.T) {
	// A read transistor so weak it can never match 6T speed → retention 0.
	dead := Cell3T1D{T2: Device{DVth: 3.0}}
	if got := Node32.RetentionTime(dead); got != 0 {
		t.Errorf("dead cell retention = %v, want 0", got)
	}
	// A write transistor so weak it stores almost nothing → retention 0.
	dead2 := Cell3T1D{T1: Device{DVth: 3.0}}
	if got := Node32.RetentionTime(dead2); got != 0 {
		t.Errorf("dead write-path cell retention = %v, want 0", got)
	}
}

func TestLeakyWriteTransistorShortensRetention(t *testing.T) {
	// A low-Vth T1 drains the storage node faster (the dominant random
	// retention-loss mechanism); retention must drop even though the
	// stored level is slightly higher.
	leaky := Cell3T1D{T1: Device{DVth: -0.3}}
	if got := Node32.RetentionTime(leaky); got >= Node32.Retention3T1D {
		t.Errorf("leaky-T1 retention = %v, want below nominal", got)
	}
}

func TestLeakFactor3T1D(t *testing.T) {
	got := Node32.LeakFactor3T1D(Nominal3T1D)
	if math.Abs(got-Leak3T1DRatio) > 1e-12 {
		t.Errorf("nominal 3T1D leak = %v, want %v", got, Leak3T1DRatio)
	}
	if Leak3T1DRatio >= 0.5 {
		t.Errorf("3T1D must leak much less than 6T, ratio = %v", Leak3T1DRatio)
	}
}

func TestRetentionAcrossNodesScalesDown(t *testing.T) {
	// Retention shrinks with technology scaling (Table 3: 4000→2900→1900
	// ns for median chips; nominal values scale the same way).
	if !(Node65.Retention3T1D > Node45.Retention3T1D && Node45.Retention3T1D > Node32.Retention3T1D) {
		t.Error("nominal retention should shrink with scaling")
	}
}

func TestQuickRetentionNonNegative(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		cell := Cell3T1D{
			T1: Device{DL: math.Mod(a, 0.3), DVth: math.Mod(b, 1)},
			T2: Device{DL: math.Mod(c, 0.3), DVth: math.Mod(d, 1)},
			T3: Device{DL: math.Mod(e, 0.3), DVth: math.Mod(g, 1)},
		}
		r := Node32.RetentionTime(cell)
		return r >= 0 && !math.IsNaN(r) && !math.IsInf(r, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAccessTimeAtRetentionMatches6T(t *testing.T) {
	// Property: for any live cell, the access-time curve crosses the 6T
	// nominal line exactly at the retention time (the two formulations
	// must stay consistent).
	f := func(a, b float64) bool {
		cell := Cell3T1D{
			T2: Device{DVth: math.Mod(a, 0.3)},
			T3: Device{DVth: math.Mod(b, 0.3)},
		}
		ret := Node32.RetentionTime(cell)
		if ret <= 0 {
			return true
		}
		at := Node32.AccessTime3T1D(cell, ret)
		return math.Abs(at-Node32.AccessTime6T)/Node32.AccessTime6T < 0.03
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
