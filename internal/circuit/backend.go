package circuit

import "sort"

// Corner identifies a process corner for a backend's access-time curve:
// the Fig. 4 family plots nominal, weak (slow read path), and strong
// (fast read path) cells against the 6T reference line. The set is
// closed; switches over Corner must stay exhaustive.
//
//enum:closed
type Corner int

// The three plotted process corners.
const (
	// CornerNominal is the zero-deviation cell.
	CornerNominal Corner = iota
	// CornerWeak is the slow read-path corner (+1σ typical variation).
	CornerWeak
	// CornerStrong is the fast read-path corner (-1σ typical variation).
	CornerStrong
)

// String names the corner.
func (c Corner) String() string {
	switch c {
	case CornerNominal:
		return "nominal"
	case CornerWeak:
		return "weak"
	case CornerStrong:
		return "strong"
	}
	return "corner(?)"
}

// PolicyKind classifies how a backend's retention should be exploited
// by the architecture layers. The set is closed; switches over
// PolicyKind must stay exhaustive.
//
//enum:closed
type PolicyKind int

const (
	// PolicyRefreshCounter is the paper's 3T1D discipline: per-chip
	// adaptive counter step chosen from the chip's own retention range
	// (§4.3.1), refresh/placement schemes consume the counters.
	PolicyRefreshCounter PolicyKind = iota
	// PolicyClassDeadline is the ARC-style discipline for backends with
	// discrete retention classes (e.g. per-way relaxed vs. full STT-RAM
	// cells): the counter step is anchored to an architectural deadline
	// shared by every chip, so class asymmetry survives quantization.
	PolicyClassDeadline
)

// String names the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case PolicyRefreshCounter:
		return "refresh-counter"
	case PolicyClassDeadline:
		return "class-deadline"
	}
	return "policy(?)"
}

// Policy is a backend's refresh/speculation policy descriptor: how the
// cache layers should quantize and exploit the retention map the
// backend produces.
type Policy struct {
	// Kind selects the counter-quantization discipline.
	Kind PolicyKind
	// RetentionClasses is the number of discrete retention classes the
	// backend builds into the array (1 for a homogeneous cell).
	RetentionClasses int
	// DVFSAware marks backends whose effective retention deadline (in
	// cycles) scales with the operating frequency; the DVFS experiments
	// re-quantize the retention map per frequency level.
	DVFSAware bool
	// CounterDeadlineSec anchors the counter step for
	// PolicyClassDeadline backends: the architectural retention horizon
	// the counters must resolve. Zero for PolicyRefreshCounter.
	CounterDeadlineSec float64 //unit:seconds
}

// BackendParam is one named scalar of a backend's configuration, listed
// for provenance hashing. Value is unit-erased by design: a digest has
// no physical dimension and mixes the IEEE-754 bit pattern.
type BackendParam struct {
	Name  string
	Value float64 //unit:dimensionless
}

// CellBackend is the pluggable cell-physics model behind the cache
// study: everything the Monte-Carlo and experiment layers need from a
// memory technology, collapsed to the paper's one knob — per-line
// retention time — plus the access-time curve, leakage, and a policy
// descriptor telling the architecture how to exploit the retention map.
//
// Implementations must be stateless or immutable after registration
// (they are shared across goroutines) and must keep the retention
// kernels allocation-free: ChipEval is passed by value, backends are
// pre-bound package singletons, and RetentionMap is dispatched once per
// chip so interface dispatch never shows up in a hot loop.
type CellBackend interface {
	// Name is the registry key ("3t1d", "sttram", ...).
	Name() string
	// NominalRetention is the zero-deviation cell's retention (seconds).
	NominalRetention(t Tech) float64
	// LineRetention is one line's retention in seconds under the chip's
	// sampled variation: the minimum over the line's data and tag cells.
	LineRetention(e ChipEval, line int) float64
	// RetentionMap is the per-line retention in seconds for every line.
	RetentionMap(e ChipEval) []float64
	// AccessTime is the array access time (seconds) of a corner cell a
	// time elapsed (seconds) after its last write — the Fig. 4 curve.
	AccessTime(t Tech, c Corner, elapsed float64) float64
	// LeakageFactor is the chip's cache leakage relative to the golden
	// (no-variation) 6T design — the Fig. 7 normalization.
	LeakageFactor(e ChipEval) float64
	// Policy describes how the architecture should exploit the backend.
	Policy() Policy
	// DigestParams lists the configuration scalars that must enter the
	// artifact params digest so store keys never collide across
	// differently-configured backends.
	DigestParams() []BackendParam
}

// DefaultBackendName is the reference 3T1D backend's registry key; an
// empty backend name resolves to it everywhere.
const DefaultBackendName = "3t1d"

// backends is the typed, reflection-free registry. Registration happens
// only from package init functions; lookups after init need no locking.
var backends = map[string]CellBackend{}

// RegisterBackend adds a backend to the registry, panicking (with the
// backend's name) on a duplicate: two models answering to one key would
// silently fork every digest and experiment built on that name.
func RegisterBackend(b CellBackend) {
	name := b.Name()
	if _, dup := backends[name]; dup {
		panic("circuit: duplicate backend registration: " + name)
	}
	backends[name] = b
}

// LookupBackend resolves a backend name; "" resolves to the default
// 3T1D reference backend.
func LookupBackend(name string) (CellBackend, bool) {
	if name == "" {
		name = DefaultBackendName
	}
	b, ok := backends[name]
	return b, ok
}

// BackendNames lists the registered backend names in sorted order.
func BackendNames() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
