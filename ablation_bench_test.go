package tdcache

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// retention-counter width, the conservative assert margin, the refresh
// pipeline's parallelism and port-yielding grace, and the RSP shuffle
// backlog. Each bench runs one benchmark workload on a fixed severe
// chip with one knob moved and reports the normalized performance (vs.
// the ideal 6T baseline) plus the relevant side-effect counter.

import (
	"testing"

	"tdcache/internal/core"
	"tdcache/internal/cpu"
	"tdcache/internal/workload"
)

// ablationChip is the shared severe-variation chip for ablations.
var ablationChip = SampleChip(Severe, 4242)

// ablationRun simulates gzip on the ablation chip with the given cache
// configuration and returns (IPC, cache counters).
func ablationRun(b *testing.B, cfg core.Config, ret core.RetentionMap) (float64, core.Counters) {
	b.Helper()
	prof, _ := workload.ByName("gzip")
	cache, err := core.New(cfg, ret)
	if err != nil {
		b.Fatal(err)
	}
	sys := cpu.NewSystem(cpu.DefaultConfig(), cache, cpu.NewL2(cpu.DefaultL2()), workload.NewGenerator(prof, 9))
	m := sys.Run(120_000)
	return m.IPC, cache.C
}

// ablationBaseline returns the ideal-6T IPC for the ablation workload.
func ablationBaseline(b *testing.B) float64 {
	cfg := core.DefaultConfig(core.NoRefreshLRU)
	ipc, _ := ablationRun(b, cfg, core.IdealRetention(cfg.Lines()))
	return ipc
}

func BenchmarkAblationCounterBits(b *testing.B) {
	base := ablationBaseline(b)
	for _, bits := range []int{2, 3, 5} {
		b.Run(map[int]string{2: "2bit", 3: "3bit", 5: "5bit"}[bits], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.RSPFIFO)
				cfg.CounterBits = bits
				// Re-quantize the chip's exact retentions for this width.
				step := core.ChooseCounterStep(ablationChip.RetentionSec, Node32.CycleSeconds(), bits)
				cfg.CounterStep = int(step)
				ret := core.QuantizeRetention(ablationChip.RetentionSec, Node32.CycleSeconds(), step, bits)
				ipc, c := ablationRun(b, cfg, ret)
				b.ReportMetric(ipc/base, "norm-perf")
				b.ReportMetric(float64(c.ExpiryInvalidates+c.ExpiryWritebacks), "expiries")
			}
		})
	}
}

func BenchmarkAblationAssertMargin(b *testing.B) {
	base := ablationBaseline(b)
	for _, margin := range []int{0, 512, 2048} {
		b.Run(map[int]string{0: "none", 512: "default", 2048: "huge"}[margin], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.NoRefreshLRU)
				cfg.AssertMargin = margin
				cfg.CounterStep = int(ablationChip.CounterStep)
				ipc, c := ablationRun(b, cfg, ablationChip.Retention)
				b.ReportMetric(ipc/base, "norm-perf")
				b.ReportMetric(float64(c.IntegritySlips), "integrity-slips")
			}
		})
	}
}

func BenchmarkAblationRefreshParallelism(b *testing.B) {
	base := ablationBaseline(b)
	for _, par := range []int{1, 4} {
		b.Run(map[int]string{1: "serial", 4: "per-pair"}[par], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.Scheme{Refresh: core.RefreshFull, Placement: core.PlaceDSP})
				cfg.RefreshParallelism = par
				cfg.CounterStep = int(ablationChip.CounterStep)
				ipc, c := ablationRun(b, cfg, ablationChip.Retention)
				b.ReportMetric(ipc/base, "norm-perf")
				b.ReportMetric(float64(c.RefreshBlocked), "refresh-blocked")
			}
		})
	}
}

func BenchmarkAblationOpGrace(b *testing.B) {
	base := ablationBaseline(b)
	for _, grace := range []int{0, 24, 256} {
		b.Run(map[int]string{0: "steal-always", 24: "default", 256: "patient"}[grace], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.Scheme{Refresh: core.RefreshFull, Placement: core.PlaceDSP})
				cfg.OpGrace = grace
				cfg.CounterStep = int(ablationChip.CounterStep)
				ipc, c := ablationRun(b, cfg, ablationChip.Retention)
				b.ReportMetric(ipc/base, "norm-perf")
				b.ReportMetric(float64(c.RefreshBlocked), "refresh-blocked")
			}
		})
	}
}

func BenchmarkAblationShuffleBacklog(b *testing.B) {
	base := ablationBaseline(b)
	for _, depth := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "depth1", 4: "default", 16: "deep"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.RSPLRU)
				cfg.MaxShuffleBacklog = depth
				cfg.CounterStep = int(ablationChip.CounterStep)
				ipc, c := ablationRun(b, cfg, ablationChip.Retention)
				b.ReportMetric(ipc/base, "norm-perf")
				b.ReportMetric(float64(c.ShuffleDropped), "shuffles-dropped")
			}
		})
	}
}
