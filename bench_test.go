package tdcache

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md's per-experiment index). Each
// benchmark regenerates its artifact at the reduced Quick scale and
// reports the artifact's headline number as a custom metric, so
// `go test -bench=. -benchmem` doubles as a fast end-to-end reproduction
// sweep. cmd/tdcache-experiments runs the same experiments at full
// scale.

import (
	"fmt"
	"runtime"
	"testing"

	"tdcache/internal/core"
	"tdcache/internal/cpu"
	"tdcache/internal/experiments"
	"tdcache/internal/workload"
)

// benchParams is shared across benchmarks so Monte-Carlo studies and
// ideal baselines are computed once per `go test -bench` process.
var benchParams = experiments.QuickParams()

func BenchmarkFig1ReuseDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(benchParams)
		b.ReportMetric(r.Within6K, "within6K")
	}
}

func BenchmarkFig4AccessCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchParams)
		b.ReportMetric(r.NominalRetUS, "nominal-ret-us")
		b.ReportMetric(r.WeakRetUS, "weak-ret-us")
	}
}

func BenchmarkFig6a6TFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6a(benchParams)
		b.ReportMetric(r.Median1X, "median-1x-freq")
		b.ReportMetric(r.Median2X, "median-2x-freq")
	}
}

func BenchmarkFig6bGlobalRefresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6b(benchParams)
		last := len(r.MeanPerf) - 1
		b.ReportMetric(r.MeanPerf[last], "perf-at-3094ns")
		b.ReportMetric(r.TotalDyn[0], "dyn-at-476ns")
	}
}

func BenchmarkFig7Leakage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig7(benchParams)
		b.ReportMetric(r.Over1p5x6T, "6T-over-1.5x")
		b.ReportMetric(r.OverGolden3T1D, "3T1D-over-golden")
	}
}

func BenchmarkTable3Nodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(benchParams)
		for _, row := range r.Rows {
			if row.Node == "32nm" {
				b.ReportMetric(row.TDBIPS/row.IdealBIPS, "3T1D-rel-BIPS-32nm")
				b.ReportMetric(row.TDLeakMW/row.IdealLeakMW, "3T1D-rel-leak-32nm")
			}
		}
	}
}

func BenchmarkFig8LineRetention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig8(benchParams)
		b.ReportMetric(r.BadDead, "bad-chip-dead-frac")
		b.ReportMetric(r.DiscardRate, "global-discard-rate")
	}
}

func BenchmarkFig9SchemeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig9(benchParams)
		// Bad-chip performance of no-refresh/LRU (index 0) versus
		// RSP-FIFO (index 6): the paper's headline contrast.
		b.ReportMetric(r.Perf[2][0], "bad-noRefLRU")
		b.ReportMetric(r.Perf[2][6], "bad-RSPFIFO")
	}
}

func BenchmarkFig10HundredChips(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig10(benchParams)
		b.ReportMetric(r.MinPerf[2], "worst-chip-RSPFIFO")
		b.ReportMetric(r.MaxPower[2], "max-power-RSPFIFO")
	}
}

func BenchmarkFig11Associativity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(benchParams)
		// Bad chip, RSP-FIFO advantage over no-refresh/LRU at 4 ways.
		b.ReportMetric(r.Perf[2][2][2]-r.Perf[2][0][2], "bad-4way-RSP-gain")
	}
}

func BenchmarkFig12Sensitivity(b *testing.B) {
	p := experiments.QuickParams()
	p.Benchmarks = []string{"gzip", "fma3d"}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(p)
		if r.CliffObserved() {
			b.ReportMetric(1, "cliff-observed")
		} else {
			b.ReportMetric(0, "cliff-observed")
		}
	}
}

func BenchmarkGlobalRefreshNoVariation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.GlobalRefreshNoVariation(benchParams)
		b.ReportMetric(r.NormalizedPerf, "normalized-perf")
		b.ReportMetric(r.BandwidthFrac, "refresh-bandwidth")
	}
}

// BenchmarkSweepFig10 measures the sweep engine itself on the Fig. 10
// chip × scheme × benchmark fan-out: the sequential lane (-parallel 1)
// versus the full worker pool. Each iteration uses fresh Params so the
// baseline/study memos are cold and the whole sweep is really re-run;
// comparing the two lanes' ns/op gives the wall-clock speedup, and
// -benchmem shows the allocation drop from per-worker harness reuse.
func BenchmarkSweepFig10(b *testing.B) {
	lane := func(parallel int) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := experiments.QuickParams()
				p.Chips = 6
				p.Instructions = 20_000
				p.Benchmarks = []string{"gzip", "mcf"}
				p.Parallel = parallel
				r := experiments.Fig10(p)
				b.ReportMetric(r.MinPerf[2], "worst-chip-RSPFIFO")
			}
		}
	}
	b.Run("parallel-1", lane(1))
	b.Run(fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), lane(0))
}

// --- Component micro-benchmarks ---

// BenchmarkCacheAccess measures the raw cost of the L1 model's
// access path (hit case).
func BenchmarkCacheAccess(b *testing.B) {
	cache, err := core.New(core.DefaultConfig(core.NoRefreshLRU), core.IdealRetention(1024))
	if err != nil {
		b.Fatal(err)
	}
	cache.Tick(0)
	cache.Fill(0x1000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Tick(int64(i + 1))
		cache.Access(0x1000, core.Load)
	}
}

// BenchmarkPipelineCycle measures whole-system simulation throughput in
// cycles per second.
func BenchmarkPipelineCycle(b *testing.B) {
	prof, _ := workload.ByName("gzip")
	cache, err := core.New(core.DefaultConfig(core.NoRefreshLRU), core.IdealRetention(1024))
	if err != nil {
		b.Fatal(err)
	}
	sys := cpu.NewSystem(cpu.DefaultConfig(), cache, cpu.NewL2(cpu.DefaultL2()), workload.NewGenerator(prof, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkChipRetentionMap measures the Monte-Carlo per-chip retention
// evaluation (the dominant circuit-model cost).
func BenchmarkChipRetentionMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		chip := SampleChip(Severe, uint64(i+1))
		if chip.Retention == nil {
			b.Fatal("no retention map")
		}
	}
}

// BenchmarkWorkloadGenerator measures instruction-stream generation.
func BenchmarkWorkloadGenerator(b *testing.B) {
	prof, _ := workload.ByName("mcf")
	g := workload.NewGenerator(prof, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
