// Package tdcache is a process-variation-tolerant 3T1D L1 data-cache
// architecture library — a from-scratch reproduction of "Process
// Variation Tolerant 3T1D-Based Cache Architectures" (Liang, Canal, Wei,
// Brooks — MICRO 2007).
//
// The package is the public facade over the internal substrates:
//
//   - a calibrated analytical circuit model of 6T SRAM and 3T1D DRAM
//     cells (timing, retention, stability, leakage) standing in for
//     Hspice + PTM;
//   - a Monte-Carlo process-variation engine (quad-tree correlated gate
//     length, random-dopant Vth);
//   - the 3T1D cache with every retention scheme from the paper
//     (global / no / partial / full refresh × LRU / DSP / RSP-FIFO /
//     RSP-LRU placement);
//   - a 4-wide out-of-order processor model with synthetic SPEC2000-like
//     workloads;
//   - power accounting and the complete experiment harness regenerating
//     every table and figure of the paper's evaluation.
//
// Quick start:
//
//	chip := tdcache.SampleChip(tdcache.Severe, 42)
//	sys, _ := tdcache.NewSystem(tdcache.SystemOptions{
//		Benchmark: "gzip",
//		Scheme:    tdcache.RSPFIFO,
//		Chip:      chip,
//	})
//	res := sys.Run(1_000_000)
//	fmt.Printf("IPC %.3f, dead lines %.1f%%\n", res.IPC, 100*chip.DeadFrac)
//
// See the examples directory for runnable programs and
// cmd/tdcache-experiments for the paper-reproduction harness.
package tdcache

import (
	"fmt"
	"io"
	"strings"

	"tdcache/internal/artifact"
	"tdcache/internal/circuit"
	"tdcache/internal/core"
	"tdcache/internal/cpu"
	"tdcache/internal/experiments"
	"tdcache/internal/montecarlo"
	"tdcache/internal/variation"
	"tdcache/internal/workload"
)

// Re-exported scheme vocabulary (see internal/core for full semantics).
type (
	// Scheme is a (refresh policy, placement policy) pair.
	Scheme = core.Scheme
	// RefreshPolicy selects global/no/partial/full refresh.
	RefreshPolicy = core.RefreshPolicy
	// Placement selects LRU/DSP/RSP-FIFO/RSP-LRU placement.
	Placement = core.Placement
	// RetentionMap is the per-line retention in cycles (counter values).
	RetentionMap = core.RetentionMap
	// CacheConfig configures the L1 data cache.
	CacheConfig = core.Config
	// Counters is the cache event-counter block.
	Counters = core.Counters
	// Tech is a technology node (Node65 / Node45 / Node32).
	Tech = circuit.Tech
	// Scenario is a process-variation scenario.
	Scenario = variation.Scenario
	// CPUConfig configures the out-of-order core.
	CPUConfig = cpu.Config
	// Metrics summarizes a simulation run.
	Metrics = cpu.Metrics
	// ExperimentParams scales the paper-reproduction experiments.
	ExperimentParams = experiments.Params
	// Artifact is one reproduced paper artifact (typed result data).
	Artifact = artifact.Artifact
	// ArtifactTable is the structured artifact payload.
	ArtifactTable = artifact.Table
	// ArtifactMeta is a result-store entry manifest.
	ArtifactMeta = artifact.Meta
	// ArtifactStore is the content-addressed on-disk result cache.
	ArtifactStore = artifact.Store
	// ArtifactFormat selects an artifact encoding (text, json, csv).
	ArtifactFormat = artifact.Format
	// ExperimentSpec describes one registered experiment.
	ExperimentSpec = experiments.Spec
)

// Artifact output formats.
const (
	FormatText = artifact.FormatText
	FormatJSON = artifact.FormatJSON
	FormatCSV  = artifact.FormatCSV
)

// Refresh policies.
const (
	RefreshNone    = core.RefreshNone
	RefreshGlobal  = core.RefreshGlobal
	RefreshPartial = core.RefreshPartial
	RefreshFull    = core.RefreshFull
)

// Placement policies.
const (
	PlaceLRU     = core.PlaceLRU
	PlaceDSP     = core.PlaceDSP
	PlaceRSPFIFO = core.PlaceRSPFIFO
	PlaceRSPLRU  = core.PlaceRSPLRU
)

// The paper's representative schemes.
var (
	NoRefreshLRU      = core.NoRefreshLRU
	PartialRefreshDSP = core.PartialRefreshDSP
	RSPFIFO           = core.RSPFIFO
	RSPLRU            = core.RSPLRU
)

// Technology nodes (Table 1).
var (
	Node65 = circuit.Node65
	Node45 = circuit.Node45
	Node32 = circuit.Node32
)

// Variation scenarios (§3.1).
var (
	NoVariation = variation.NoVariation
	Typical     = variation.Typical
	Severe      = variation.Severe
)

// Benchmarks lists the eight SPEC2000 proxy workloads.
func Benchmarks() []string { return workload.Names() }

// DefaultBackend is the registry name of the reference 3T1D cell model.
// An empty backend name selects it everywhere a name is accepted.
const DefaultBackend = circuit.DefaultBackendName

// Backends lists the registered cell-physics backends in sorted order.
func Backends() []string { return circuit.BackendNames() }

// Chip is one sampled die: its retention map plus circuit figures.
type Chip = montecarlo.Chip

// SampleChip samples one chip under the scenario at the 32 nm node.
func SampleChip(sc Scenario, seed uint64) *Chip {
	return SampleChipAt(Node32, sc, seed)
}

// SampleChipAt samples one chip at an explicit technology node.
func SampleChipAt(tech Tech, sc Scenario, seed uint64) *Chip {
	s := montecarlo.New(montecarlo.Options{Tech: tech, Scenario: sc, Seed: seed, Chips: 1})
	return &s.Chips[0]
}

// SampleChipBackend samples one chip under the named cell backend
// (see Backends; "" selects the 3T1D reference model). Unknown names
// error rather than silently falling back.
func SampleChipBackend(tech Tech, sc Scenario, seed uint64, backend string) (*Chip, error) {
	b, ok := circuit.LookupBackend(backend)
	if !ok {
		return nil, fmt.Errorf("tdcache: unknown backend %q (registered: %s)", backend, strings.Join(Backends(), ", "))
	}
	s := montecarlo.New(montecarlo.Options{Tech: tech, Scenario: sc, Seed: seed, Chips: 1, Backend: b})
	return &s.Chips[0], nil
}

// SampleChips samples a population of n chips (a Monte-Carlo study).
func SampleChips(tech Tech, sc Scenario, seed uint64, n int) *montecarlo.Study {
	return montecarlo.New(montecarlo.Options{Tech: tech, Scenario: sc, Seed: seed, Chips: n})
}

// SystemOptions configures a full simulated system.
type SystemOptions struct {
	// Benchmark is one of Benchmarks() (required).
	Benchmark string
	// Seed roots the workload stream (default 1).
	Seed uint64
	// Scheme is the cache retention scheme (default NoRefreshLRU).
	Scheme Scheme
	// Chip supplies the retention map; nil simulates an ideal cache.
	Chip *Chip
	// Retention overrides the retention map directly (cycles per line);
	// takes precedence over Chip.
	Retention RetentionMap
	// Cache overrides the L1 configuration (zero value = paper default).
	Cache *CacheConfig
	// CPU overrides the core configuration (zero value = Table 2).
	CPU *CPUConfig
}

// System is a simulated processor + memory hierarchy.
type System struct {
	// Sys is the underlying pipeline model.
	Sys *cpu.System
	// Cache is the L1 data cache under study.
	Cache *core.Cache
	// L2 is the unified second-level cache.
	L2 *cpu.L2
}

// RunResult couples pipeline metrics with cache counters.
type RunResult struct {
	// IPC is instructions per cycle.
	IPC float64
	// Metrics is the full pipeline metric block.
	Metrics Metrics
	// Cache is a snapshot of the cache counters.
	Cache Counters
}

// NewSystem builds a system per the options. Construction errors
// from the core layers are returned verbatim by documented contract.
//
//errflow:passthrough
func NewSystem(o SystemOptions) (*System, error) {
	prof, ok := workload.ByName(o.Benchmark)
	if !ok {
		return nil, fmt.Errorf("tdcache: unknown benchmark %q (have %v)", o.Benchmark, Benchmarks())
	}
	var cfg core.Config
	if o.Cache != nil {
		cfg = *o.Cache
	} else {
		cfg = core.DefaultConfig(o.Scheme)
	}
	cfg.Scheme = o.Scheme
	ret := o.Retention
	if ret == nil && o.Chip != nil {
		ret = o.Chip.Retention
		if o.Chip.CounterStep > 0 {
			cfg.CounterStep = int(o.Chip.CounterStep)
		}
	}
	if ret == nil {
		ret = core.IdealRetention(cfg.Lines())
	}
	cache, err := core.New(cfg, ret)
	if err != nil {
		return nil, err
	}
	ccfg := cpu.DefaultConfig()
	if o.CPU != nil {
		ccfg = *o.CPU
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	l2 := cpu.NewL2(cpu.DefaultL2())
	sys := cpu.NewSystem(ccfg, cache, l2, workload.NewGenerator(prof, seed))
	return &System{Sys: sys, Cache: cache, L2: l2}, nil
}

// Run advances the system by the given number of committed instructions
// and returns cumulative results.
func (s *System) Run(instructions uint64) RunResult {
	m := s.Sys.Run(instructions)
	return RunResult{IPC: m.IPC, Metrics: m, Cache: s.Cache.C}
}

// DefaultExperimentParams returns the full-size experiment configuration
// used by cmd/tdcache-experiments.
func DefaultExperimentParams() *ExperimentParams { return experiments.DefaultParams() }

// QuickExperimentParams returns a reduced configuration suitable for
// smoke tests and benchmarks.
func QuickExperimentParams() *ExperimentParams { return experiments.QuickParams() }

// Experiments lists the registered experiment IDs (fig1..fig12, tab1..3,
// sec4.1) in presentation order.
func Experiments() []string { return experiments.Names() }

// ExperimentSpecs returns the declarative experiment registry in
// presentation order (a copy; the registry itself is immutable).
func ExperimentSpecs() []ExperimentSpec {
	return append([]ExperimentSpec(nil), experiments.Specs...)
}

// RunExperiment regenerates one paper artifact (or all of them for
// "all"), printing the paper-shaped output to w. Experiment errors
// are returned verbatim by documented contract.
//
//errflow:passthrough
func RunExperiment(id string, p *ExperimentParams, w io.Writer) error {
	return experiments.Run(id, p, w)
}

// BuildExperiment runs one experiment and returns its typed artifact.
// Experiment errors are returned verbatim by documented contract.
//
//errflow:passthrough
func BuildExperiment(id string, p *ExperimentParams) (Artifact, error) {
	return experiments.Build(id, p)
}

// ExperimentDigest returns the content hash of the experiment
// parameters — the store key half that identifies a configuration.
func ExperimentDigest(p *ExperimentParams) string { return experiments.Digest(p) }

// ParseArtifactFormat validates a format name (text, json, csv). The
// artifact package's error is returned verbatim by documented contract.
//
//errflow:passthrough
func ParseArtifactFormat(s string) (ArtifactFormat, error) { return artifact.ParseFormat(s) }

// EncodeArtifact writes a in the given format. Encoder errors are
// returned verbatim by documented contract.
//
//errflow:passthrough
func EncodeArtifact(w io.Writer, f ArtifactFormat, a Artifact) error {
	return artifact.Encode(w, f, a)
}

// NewArtifactStore opens (creating if needed) a result store at dir.
// Store errors are returned verbatim by documented contract.
//
//errflow:passthrough
func NewArtifactStore(dir string) (*ArtifactStore, error) { return artifact.NewStore(dir) }

// ErrStoreMiss reports an artifact-store lookup miss (use errors.Is).
var ErrStoreMiss = artifact.ErrMiss
