package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tdcache/internal/analysis/driver"
)

// TestRepositoryIsLintClean is the suite's own regression test: the
// tree must stay free of determinism findings. It repeats what the CI
// lint job does, so a violation fails `go test ./...` locally too —
// this is what keeps the fig6b map-order sum and the cpu.L2 Reset
// annotations from regressing.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := driver.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := driver.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	ctx := loader.Context()
	ctx.AuditSuppressions = true
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := driver.Run(analyzers, pkg, ctx)
		if err != nil {
			t.Fatalf("running suite on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d.String(loader.Fset))
		}
	}
}

// TestCollectMatchesCheckedInBaseline is the -json / -baseline
// contract: a full-repo collect must produce a finding list that
// round-trips through JSON and is fully absorbed by the checked-in
// (empty) baseline — i.e. CI's machine-readable lane agrees with the
// human one above.
func TestCollectMatchesCheckedInBaseline(t *testing.T) {
	findings, err := collect(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var back []finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("-json output does not round-trip: %v", err)
	}
	if len(back) != len(findings) {
		t.Fatalf("round-trip lost findings: %d != %d", len(back), len(findings))
	}

	root, err := driver.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := loadBaseline(filepath.Join(root, "cmd/tdcache-lint/baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range filterNew(findings, baseline) {
		t.Errorf("finding not covered by baseline: %s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}

// TestRosterListsAllAnalyzers pins the `-list` surface: the suite is
// exactly the fourteen rules the README documents, in sorted order,
// each with a usable one-line doc.
func TestRosterListsAllAnalyzers(t *testing.T) {
	want := []string{
		"atomiccheck", "closecheck", "detrand", "errflow", "exhaustcheck",
		"floatcmp", "hotpath", "lifecycle", "lockcheck", "mapiter",
		"purecheck", "resetcheck", "sweeppure", "unitflow",
	}
	if len(analyzers) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(analyzers), len(want))
	}
	for i, a := range analyzers {
		if a.Name != want[i] {
			t.Errorf("analyzers[%d] = %s, want %s (keep the list sorted)", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Version == "" {
			t.Errorf("analyzer %s has no Version; the cache key needs one", a.Name)
		}
	}

	lines := strings.Split(strings.TrimRight(roster(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(want), roster())
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, want[i]) {
			t.Errorf("-list line %d = %q, want prefix %q", i, line, want[i])
		}
		if fields := strings.Fields(line); len(fields) < 2 {
			t.Errorf("-list line %d has no doc: %q", i, line)
		}
	}
}

// TestBaselineFiltering pins the suppression-diff semantics: matching
// is by (rule, file, message) — line/column shifts do not un-suppress —
// and each baseline entry absorbs exactly one occurrence.
func TestBaselineFiltering(t *testing.T) {
	old := []finding{
		{Rule: "unitflow", File: "a.go", Line: 10, Col: 2, Message: "magic scale factor"},
		{Rule: "floatcmp", File: "b.go", Line: 3, Col: 9, Message: "float == comparison"},
	}
	data, err := json.Marshal(old)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	now := []finding{
		// Same finding, shifted by an unrelated edit: suppressed.
		{Rule: "unitflow", File: "a.go", Line: 42, Col: 7, Message: "magic scale factor"},
		// Second occurrence of a baselined single occurrence: new.
		{Rule: "floatcmp", File: "b.go", Line: 3, Col: 9, Message: "float == comparison"},
		{Rule: "floatcmp", File: "b.go", Line: 8, Col: 1, Message: "float == comparison"},
		// Different rule on a baselined file: new.
		{Rule: "mapiter", File: "a.go", Line: 10, Col: 2, Message: "map iteration"},
	}
	fresh := filterNew(now, baseline)
	if len(fresh) != 2 {
		t.Fatalf("filterNew returned %d fresh findings, want 2: %+v", len(fresh), fresh)
	}
	if fresh[0].Rule != "floatcmp" || fresh[1].Rule != "mapiter" {
		t.Errorf("wrong findings survived: %+v", fresh)
	}

	if got := filterNew(nil, nil); len(got) != 0 {
		t.Errorf("filterNew(nil, nil) = %+v, want empty", got)
	}
}
