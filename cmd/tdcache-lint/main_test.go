package main

import (
	"testing"

	"tdcache/internal/analysis/driver"
)

// TestRepositoryIsLintClean is the suite's own regression test: the
// tree must stay free of determinism findings. It repeats what the CI
// lint job does, so a violation fails `go test ./...` locally too —
// this is what keeps the fig6b map-order sum and the cpu.L2 Reset
// annotations from regressing.
func TestRepositoryIsLintClean(t *testing.T) {
	root, err := driver.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := driver.NewModuleLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		diags, err := driver.Run(analyzers, pkg, loader.Fset)
		if err != nil {
			t.Fatalf("running suite on %s: %v", path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d.String(loader.Fset))
		}
	}
}
