package main

// The lint self-benchmark behind `tdcache-lint -bench FILE`: three
// engine runs over the same patterns — cold with a fresh cache, warm
// over that now-populated cache, and a sequential (-j1) cold run with
// its own fresh cache — cross-checked for byte-identical findings and
// summarized to JSON. The checked-in BENCH_lint.json is one such run,
// sitting beside BENCH_serve.json as the analysis layer's performance
// record; CI regenerates it and uploads it as an artifact.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"tdcache/internal/analysis/driver"
)

// benchRun summarizes one engine run for the benchmark document.
type benchRun struct {
	Jobs           int     `json:"jobs"`
	CacheHits      int     `json:"cache_hits"`
	CacheMisses    int     `json:"cache_misses"`
	WallSeconds    float64 `json:"wall_seconds"`
	LoadSeconds    float64 `json:"load_seconds"`
	AnalyzeSeconds float64 `json:"analyze_seconds"`
	Parallelism    float64 `json:"parallelism"`
	Findings       int     `json:"findings"`
}

// benchDoc is the BENCH_lint.json schema.
type benchDoc struct {
	Name       string `json:"name"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"go_max_procs"`
	Packages   int    `json:"packages"`
	// Cold runs with an empty cache, Warm replays Cold's cache,
	// Sequential is -j1 with its own empty cache.
	Cold       benchRun `json:"cold"`
	Warm       benchRun `json:"warm"`
	Sequential benchRun `json:"sequential"`
	// SpeedupWarm is Cold.WallSeconds / Warm.WallSeconds.
	SpeedupWarm float64 `json:"speedup_warm"`
	// ByteIdentical asserts all three runs' findings JSON matched.
	ByteIdentical bool `json:"byte_identical"`
}

func summarize(res *driver.RunResult) benchRun {
	return benchRun{
		Jobs:           res.Stats.Jobs,
		CacheHits:      res.Stats.CacheHits,
		CacheMisses:    res.Stats.CacheMisses,
		WallSeconds:    res.Stats.WallSeconds,
		LoadSeconds:    res.Stats.LoadSeconds,
		AnalyzeSeconds: res.Stats.AnalyzeSeconds,
		Parallelism:    res.Stats.Parallelism,
		Findings:       len(res.Diags),
	}
}

// findingsBytes renders a run's findings exactly as -json would.
func findingsBytes(res *driver.RunResult) ([]byte, error) {
	findings := res.Diags
	if findings == nil {
		findings = []finding{}
	}
	return json.Marshal(findings)
}

// runBench executes the three benchmark runs and writes the document.
func runBench(root string, patterns []string, out string) error {
	coldDir, err := os.MkdirTemp("", "tdcache-lint-bench-cold-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(coldDir) //lint:allow errflow best-effort temp cleanup; the dir is under os.TempDir and TestBenchDocument covers the bench path end to end
	seqDir, err := os.MkdirTemp("", "tdcache-lint-bench-seq-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(seqDir) //lint:allow errflow best-effort temp cleanup; the dir is under os.TempDir and TestBenchDocument covers the bench path end to end

	cold, err := lint(root, patterns, coldDir, 0)
	if err != nil {
		return fmt.Errorf("bench cold run: %w", err)
	}
	warm, err := lint(root, patterns, coldDir, 0)
	if err != nil {
		return fmt.Errorf("bench warm run: %w", err)
	}
	seq, err := lint(root, patterns, seqDir, 1)
	if err != nil {
		return fmt.Errorf("bench sequential run: %w", err)
	}

	coldJSON, err := findingsBytes(cold)
	if err != nil {
		return err
	}
	warmJSON, err := findingsBytes(warm)
	if err != nil {
		return err
	}
	seqJSON, err := findingsBytes(seq)
	if err != nil {
		return err
	}
	doc := benchDoc{
		Name:          "lint-bench",
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Packages:      cold.Stats.Packages,
		Cold:          summarize(cold),
		Warm:          summarize(warm),
		Sequential:    summarize(seq),
		ByteIdentical: string(coldJSON) == string(warmJSON) && string(coldJSON) == string(seqJSON),
	}
	if doc.Warm.WallSeconds > 0 {
		doc.SpeedupWarm = doc.Cold.WallSeconds / doc.Warm.WallSeconds
	}
	return writeJSONFile(out, doc)
}
