package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestBenchDocument runs the full -bench path over a minimal module
// and validates the document: schema fields, a fully warm second run,
// and the cross-run byte-identity assertion.
func TestBenchDocument(t *testing.T) {
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module benchmod\n\ngo 1.24\n",
		"p/p.go": "package p\n\n// Add sums two ints.\nfunc Add(a, b int) int { return a + b }\n",
	}
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	out := filepath.Join(t.TempDir(), "BENCH_lint.json")
	if err := runBench(root, []string{"./..."}, out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("bench document does not parse: %v", err)
	}

	if doc.Name != "lint-bench" || doc.GoVersion != runtime.Version() {
		t.Errorf("doc header = %s/%s, want lint-bench/%s", doc.Name, doc.GoVersion, runtime.Version())
	}
	if doc.Packages != 1 {
		t.Errorf("doc.Packages = %d, want 1", doc.Packages)
	}
	if doc.Cold.CacheMisses != 1 || doc.Cold.CacheHits != 0 {
		t.Errorf("cold run = %d hits / %d misses, want 0/1", doc.Cold.CacheHits, doc.Cold.CacheMisses)
	}
	if doc.Warm.CacheHits != 1 || doc.Warm.CacheMisses != 0 {
		t.Errorf("warm run = %d hits / %d misses, want 1/0", doc.Warm.CacheHits, doc.Warm.CacheMisses)
	}
	if doc.Sequential.Jobs != 1 {
		t.Errorf("sequential run used %d jobs, want 1", doc.Sequential.Jobs)
	}
	if !doc.ByteIdentical {
		t.Error("cold, warm, and sequential findings were not byte-identical")
	}
	if doc.SpeedupWarm <= 0 {
		t.Errorf("speedup_warm = %v, want > 0", doc.SpeedupWarm)
	}
	if doc.Cold.Findings != doc.Warm.Findings || doc.Cold.Findings != doc.Sequential.Findings {
		t.Errorf("finding counts diverge: cold %d, warm %d, seq %d",
			doc.Cold.Findings, doc.Warm.Findings, doc.Sequential.Findings)
	}
}
