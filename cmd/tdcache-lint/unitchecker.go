package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"tdcache/internal/analysis/driver"
	"tdcache/internal/analysis/framework"
)

// vetConfig is the JSON configuration cmd/go writes for a vet tool,
// one file per package. Field names and semantics follow the
// unitchecker protocol (x/tools/go/analysis/unitchecker); fields this
// tool does not need are accepted and ignored so the config parses
// across go releases.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes one package described by a vet config file and
// exits non-zero on findings, mirroring unitchecker.Main.
func unitcheck(cfgFile string) {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fatal(err)
	}
	// The suite exchanges no facts between packages, but the protocol
	// requires the vetx output file to exist for the build system's
	// dependency tracking.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return // dependency pass: facts only, and we have none
	}
	diags, err := analyzeUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		fatal(err)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

func readConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// analyzeUnit parses and type-checks the unit against the pre-built
// export data of its dependencies, then runs the suite.
func analyzeUnit(cfg *vetConfig) ([]string, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer:  &mappingImporter{imp: imp, importMap: cfg.ImportMap},
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	pkg := &driver.Package{Path: cfg.ImportPath, Dir: cfg.Dir, Files: files, Types: tpkg, Info: info}
	// Vet mode has no imported-package syntax (export data only), so
	// Imported stays nil and fact-driven analyzers treat cross-package
	// declarations as unknown; the standalone CI lane covers those.
	ctx := &driver.Context{Fset: fset, Facts: framework.NewFactStore()}
	diags, err := driver.Run(analyzers, pkg, ctx)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.String(fset))
	}
	return out, nil
}

// mappingImporter canonicalizes import paths through the vet config's
// ImportMap before consulting export data, and resolves "unsafe"
// directly.
type mappingImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m *mappingImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}
