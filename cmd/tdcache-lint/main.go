// Command tdcache-lint is the determinism lint suite: it runs the four
// reproducibility analyzers (detrand, mapiter, resetcheck, sweeppure)
// over the repository and fails on any finding.
//
// Two invocation modes:
//
//	tdcache-lint ./...                          # standalone, from module root
//	go vet -vettool=$(which tdcache-lint) ./... # as a vet tool
//
// Standalone mode loads and type-checks packages itself (offline, pure
// stdlib); vet mode speaks the cmd/go unitchecker protocol — the go
// command hands the tool a JSON config per package with pre-built
// export data, which is faster and composes with go vet's caching.
//
// Findings are suppressed line-by-line with
//
//	//lint:allow <rule> <reason>
//
// either trailing the offending line or standalone on the line above.
// The reason is mandatory. See the "Determinism invariants" section of
// README.md for the rules themselves.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tdcache/internal/analysis/detrand"
	"tdcache/internal/analysis/driver"
	"tdcache/internal/analysis/framework"
	"tdcache/internal/analysis/mapiter"
	"tdcache/internal/analysis/resetcheck"
	"tdcache/internal/analysis/sweeppure"
)

// analyzers is the determinism suite, in reporting order.
var analyzers = []*framework.Analyzer{
	detrand.Analyzer,
	mapiter.Analyzer,
	resetcheck.Analyzer,
	sweeppure.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes vet tools before use: -V=full must print a
	// version line usable as a build ID, and -flags must dump the
	// tool's flag schema as JSON.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Printf("%s version devel comments-go-here buildID=devel\n", progname)
		return
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Unitchecker mode: `go vet -vettool=...` invokes the tool once
		// per package with a config file.
		unitcheck(args[0])
		return
	}

	if len(args) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s ./... | %s <pkg-dir>... (run from inside the module)\n", progname, progname)
		os.Exit(2)
	}
	standalone(args)
}

// standalone loads packages from directory patterns and reports every
// surviving finding, exiting 1 if there are any.
func standalone(patterns []string) {
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := driver.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := driver.NewModuleLoader(root)
	if err != nil {
		fatal(err)
	}
	paths, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	findings := 0
	for _, path := range paths {
		if skipPath(path) {
			continue
		}
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags, err := driver.Run(analyzers, pkg, loader.Fset)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			fmt.Println(d.String(loader.Fset))
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "tdcache-lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// skipPath excludes the analyzers' own testdata-shaped fixtures; the
// loader already skips testdata/ directories, so this only guards
// against explicit patterns.
func skipPath(path string) bool {
	return strings.Contains(path, "/testdata/")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdcache-lint:", err)
	os.Exit(1)
}
