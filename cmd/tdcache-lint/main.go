// Command tdcache-lint is the determinism, physical-correctness,
// concurrency-safety, and error-discipline lint suite: it runs the
// four reproducibility analyzers (detrand, mapiter, resetcheck,
// sweeppure), the two unit-discipline analyzers (unitflow, floatcmp),
// the two interprocedural call-graph analyzers (hotpath, purecheck),
// the three concurrency analyzers (lockcheck, atomiccheck, lifecycle),
// and the three error-and-resource analyzers (errflow, closecheck,
// exhaustcheck) over the repository and fails on any finding.
// `tdcache-lint -list` prints the roster.
//
// Two invocation modes:
//
//	tdcache-lint ./...                          # standalone, from module root
//	go vet -vettool=$(which tdcache-lint) ./... # as a vet tool
//
// Standalone mode loads and type-checks packages itself (offline, pure
// stdlib); vet mode speaks the cmd/go unitchecker protocol — the go
// command hands the tool a JSON config per package with pre-built
// export data, which is faster and composes with go vet's caching.
//
// Findings are suppressed line-by-line with
//
//	//lint:allow <rule> <reason>
//
// either trailing the offending line or standalone on the line above.
// The reason is mandatory. See the "Determinism invariants" section of
// README.md for the rules themselves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tdcache/internal/analysis/atomiccheck"
	"tdcache/internal/analysis/closecheck"
	"tdcache/internal/analysis/detrand"
	"tdcache/internal/analysis/driver"
	"tdcache/internal/analysis/errflow"
	"tdcache/internal/analysis/exhaustcheck"
	"tdcache/internal/analysis/floatcmp"
	"tdcache/internal/analysis/framework"
	"tdcache/internal/analysis/hotpath"
	"tdcache/internal/analysis/lifecycle"
	"tdcache/internal/analysis/lockcheck"
	"tdcache/internal/analysis/mapiter"
	"tdcache/internal/analysis/purecheck"
	"tdcache/internal/analysis/resetcheck"
	"tdcache/internal/analysis/sweeppure"
	"tdcache/internal/analysis/unitflow"
)

// analyzers is the full suite — the four determinism rules, the two
// physical-correctness rules, the two call-graph rules, the three
// concurrency rules, and the three error-and-resource rules — in
// reporting order.
var analyzers = []*framework.Analyzer{
	atomiccheck.Analyzer,
	closecheck.Analyzer,
	detrand.Analyzer,
	errflow.Analyzer,
	exhaustcheck.Analyzer,
	floatcmp.Analyzer,
	hotpath.Analyzer,
	lifecycle.Analyzer,
	lockcheck.Analyzer,
	mapiter.Analyzer,
	purecheck.Analyzer,
	resetcheck.Analyzer,
	sweeppure.Analyzer,
	unitflow.Analyzer,
}

func main() {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	// The go command probes vet tools before use: -V=full must print a
	// version line usable as a build ID, and -flags must dump the
	// tool's flag schema as JSON.
	if len(args) == 1 && (args[0] == "-V=full" || args[0] == "--V=full") {
		fmt.Printf("%s version devel comments-go-here buildID=devel\n", progname)
		return
	}
	if len(args) == 1 && (args[0] == "-flags" || args[0] == "--flags") {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Unitchecker mode: `go vet -vettool=...` invokes the tool once
		// per package with a config file.
		unitcheck(args[0])
		return
	}
	if len(args) == 1 && (args[0] == "-list" || args[0] == "--list") {
		os.Stdout.WriteString(roster())
		return
	}

	standalone(args)
}

// roster renders the analyzer list with one-line docs, one rule per
// line, for `tdcache-lint -list`.
func roster() string {
	var b strings.Builder
	width := 0
	for _, a := range analyzers {
		if len(a.Name) > width {
			width = len(a.Name)
		}
	}
	for _, a := range analyzers {
		// One line per rule: collapse whitespace, keep the first
		// clause, and cap the width so the roster scans as a table.
		doc := strings.Join(strings.Fields(a.Doc), " ")
		if i := strings.Index(doc, "; "); i > 0 {
			doc = doc[:i]
		}
		const maxDoc = 100
		if len(doc) > maxDoc {
			if i := strings.LastIndex(doc[:maxDoc], " "); i > 0 {
				doc = doc[:i] + " ..."
			}
		}
		fmt.Fprintf(&b, "%-*s  %s\n", width, a.Name, strings.TrimRight(doc, " ,"))
	}
	return b.String()
}

// finding is the machine-readable form of one diagnostic — the
// engine's rendered wire type, whose file is module-root-relative so
// baselines are stable across checkouts.
type finding = driver.Diag

// findingKey identifies a finding for baseline matching. Line and
// column are deliberately excluded so unrelated edits that shift a
// suppressed legacy finding do not break the baseline.
func findingKey(f finding) string { return f.Rule + "\x00" + f.File + "\x00" + f.Message }

// standalone loads packages from directory patterns and reports every
// surviving finding, exiting 1 if any is not covered by the baseline.
func standalone(args []string) {
	fs := flag.NewFlagSet("tdcache-lint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	baselineFile := fs.String("baseline", "", "JSON findings file; only findings absent from it fail the run")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory (empty disables caching)")
	jobs := fs.Int("j", 0, "parallel analysis workers (0 = GOMAXPROCS, 1 = sequential)")
	statsFile := fs.String("stats", "", "write per-package/per-analyzer run statistics JSON to this file")
	benchFile := fs.String("bench", "", "self-benchmark (cold vs warm vs -j1) and write JSON to this file")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [-baseline file] [-cache dir] [-j n] [-stats file] [-bench file] ./... (run from inside the module)\n", fs.Name())
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	baseline := make(map[string]int)
	if *baselineFile != "" {
		var err error
		baseline, err = loadBaseline(*baselineFile)
		if err != nil {
			fatal(err)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := driver.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	if *benchFile != "" {
		if err := runBench(root, patterns, *benchFile); err != nil {
			fatal(err)
		}
		return
	}
	res, err := lint(root, patterns, *cacheDir, *jobs)
	if err != nil {
		fatal(err)
	}
	if *statsFile != "" {
		if err := writeJSONFile(*statsFile, res.Stats); err != nil {
			fatal(err)
		}
	}
	findings := res.Diags
	if findings == nil {
		findings = []finding{}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fatal(err)
		}
	}
	fresh := filterNew(findings, baseline)
	if !*jsonOut {
		for _, f := range fresh {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "tdcache-lint: %d new finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

// loadBaseline reads a -json findings file into a key multiset.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var old []finding
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	baseline := make(map[string]int)
	for _, f := range old {
		baseline[findingKey(f)]++
	}
	return baseline, nil
}

// lint runs the engine over the patterns with the standalone lane's
// configuration: the full roster, suppression audit on.
func lint(root string, patterns []string, cacheDir string, jobs int) (*driver.RunResult, error) {
	// The standalone lane sees full source for every package, so live
	// suppressions are provably live here; enable the allowcheck audit.
	return driver.Lint(root, driver.Options{
		Patterns:  patterns,
		Analyzers: analyzers,
		Jobs:      jobs,
		CacheDir:  cacheDir,
		Audit:     true,
	})
}

// collect runs the full suite over the patterns (resolved against the
// module containing dir) and returns every finding with module-root-
// relative file paths. The result is never nil, so it always encodes
// as a JSON array.
func collect(dir string, patterns []string) ([]finding, error) {
	root, err := driver.FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	res, err := lint(root, patterns, "", 0)
	if err != nil {
		return nil, err
	}
	if res.Diags == nil {
		return []finding{}, nil
	}
	return res.Diags, nil
}

// filterNew returns the findings not absorbed by the baseline multiset
// (each baseline entry suppresses at most one identical finding).
func filterNew(findings []finding, baseline map[string]int) []finding {
	fresh := []finding{}
	for _, f := range findings {
		if n := baseline[findingKey(f)]; n > 0 {
			baseline[findingKey(f)] = n - 1
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh
}

// writeJSONFile writes v as indented JSON to path.
func writeJSONFile(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tdcache-lint:", err)
	os.Exit(1)
}
