// Command tdcache-loadbench drives the HTTP serve layer with concurrent
// clients against an in-process server and reports latency and
// throughput, proving the sharded compute path: the same request mix is
// run twice over fresh stores — once with the configured worker shard,
// once forced to a single worker — and every response body is checked
// byte-for-byte identical between the two runs.
//
// Results are written as JSON (default BENCH_serve.json) so the repo
// can track a benchmark trajectory:
//
//	tdcache-loadbench -clients 8 -requests 40 -out BENCH_serve.json
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tdcache/internal/artifact"
	"tdcache/internal/experiments"
	"tdcache/internal/serve"
)

func main() {
	var (
		clients      = flag.Int("clients", 12, "concurrent clients")
		requests     = flag.Int("requests", 40, "requests per client")
		workers      = flag.Int("workers", 4, "compute workers for the sharded run (0 = server default)")
		maxInflight  = flag.Int("max-inflight", 0, "admission bound (0 = server default)")
		cacheBytes   = flag.Int64("cache-bytes", 0, "hot-tier budget (0 = default, negative = disabled)")
		ids          = flag.String("ids", "fig1,fig4,fig6a,fig6b,fig8,tab1,tab2,yield", "experiment IDs to request (comma separated)")
		chips        = flag.Int("chips", 4, "chip population for the benchmark parameter set")
		distChips    = flag.Int("dist-chips", 6, "distribution population for the benchmark parameter set")
		instructions = flag.Uint64("instructions", 3000, "instructions per benchmark run")
		out          = flag.String("out", "BENCH_serve.json", "output JSON path (- for stdout)")
	)
	flag.Parse()
	cfg := config{
		clients:     *clients,
		requests:    *requests,
		workers:     *workers,
		maxInflight: *maxInflight,
		cacheBytes:  *cacheBytes,
		ids:         strings.Split(*ids, ","),
	}
	// Parameter sets are constructed fresh per measured run: Clone shares
	// memoized sub-computations, so reusing one family across both runs
	// would let the second run coast on the first run's simulations.
	c, dc, ins := *chips, *distChips, *instructions
	cfg.newFull = func() *experiments.Params {
		return benchParams(experiments.DefaultParams(), c, dc, ins)
	}
	cfg.newQuick = func() *experiments.Params {
		return benchParams(experiments.QuickParams(), c, dc, ins/2)
	}
	if err := run(cfg, *out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchParams reduces a parameter set so a bench run simulates in
// seconds; the reductions preserve determinism, so byte-identity checks
// across runs remain meaningful.
func benchParams(p *experiments.Params, chips, distChips int, instructions uint64) *experiments.Params {
	p.Chips = chips
	p.DistChips = distChips
	p.Instructions = instructions
	p.Benchmarks = []string{"gzip", "mcf"}
	p.Parallel = 1
	return p
}

type config struct {
	clients     int
	requests    int
	workers     int
	maxInflight int
	cacheBytes  int64
	ids         []string
	newFull     func() *experiments.Params
	newQuick    func() *experiments.Params
}

// runStats is one configuration's measurement, serialized into
// BENCH_serve.json.
type runStats struct {
	Workers     int                 `json:"workers"`
	MaxInflight int                 `json:"max_inflight"`
	Requests    int                 `json:"requests"`
	OK          int                 `json:"ok"`
	Sheds       uint64              `json:"sheds"`
	Computes    uint64              `json:"computes"`
	DurationSec float64             `json:"duration_sec"`
	RPS         float64             `json:"rps"`
	P50Ms       float64             `json:"p50_ms"`
	P99Ms       float64             `json:"p99_ms"`
	Cache       artifact.CacheStats `json:"cache"`
}

// benchResult is the full BENCH_serve.json document.
type benchResult struct {
	Name          string   `json:"name"`
	GoMaxProcs    int      `json:"go_max_procs"`
	Clients       int      `json:"clients"`
	ReqPerClient  int      `json:"requests_per_client"`
	IDs           []string `json:"ids"`
	Sharded       runStats `json:"sharded"`
	SingleWorker  runStats `json:"single_worker"`
	Speedup       float64  `json:"speedup"`
	ByteIdentical bool     `json:"byte_identical"`
}

func run(cfg config, out string) error {
	fmt.Fprintf(os.Stderr, "loadbench: %d clients x %d requests over %v\n",
		cfg.clients, cfg.requests, cfg.ids)

	sharded, shardedBodies, err := measure(cfg, cfg.workers, cfg.maxInflight)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadbench: sharded (%d workers): %.1f req/s, p50 %.2f ms, p99 %.2f ms, %d computes, %d sheds\n",
		sharded.Workers, sharded.RPS, sharded.P50Ms, sharded.P99Ms, sharded.Computes, sharded.Sheds)

	single, singleBodies, err := measure(cfg, 1, cfg.maxInflight)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadbench: single worker: %.1f req/s, p50 %.2f ms, p99 %.2f ms, %d computes, %d sheds\n",
		single.RPS, single.P50Ms, single.P99Ms, single.Computes, single.Sheds)

	identical := sameBodies(shardedBodies, singleBodies)
	if !identical {
		fmt.Fprintln(os.Stderr, "loadbench: WARNING: sharded and single-worker responses differ")
	}
	res := benchResult{
		Name:          "serve-load",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Clients:       cfg.clients,
		ReqPerClient:  cfg.requests,
		IDs:           cfg.ids,
		Sharded:       sharded,
		SingleWorker:  single,
		Speedup:       sharded.RPS / single.RPS,
		ByteIdentical: identical,
	}
	fmt.Fprintf(os.Stderr, "loadbench: speedup %.2fx, byte-identical: %v\n", res.Speedup, identical)

	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// measure runs the full client mix against a fresh server (and fresh
// store) with the given shard width, returning the stats and a map of
// request path to response-body digest for cross-run identity checks.
func measure(cfg config, workers, maxInflight int) (runStats, map[string]string, error) {
	dir, err := os.MkdirTemp("", "tdcache-loadbench-")
	if err != nil {
		return runStats{}, nil, err
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			fmt.Fprintln(os.Stderr, "tdcache-loadbench: cleaning scratch store:", err)
		}
	}()
	st, err := artifact.NewStore(dir)
	if err != nil {
		return runStats{}, nil, err
	}
	s, err := serve.New(serve.Options{
		Store:       st,
		Full:        cfg.newFull(),
		Quick:       cfg.newQuick(),
		Workers:     workers,
		MaxInflight: maxInflight,
		CacheBytes:  cfg.cacheBytes,
	})
	if err != nil {
		return runStats{}, nil, err
	}
	defer s.Close()

	paths := requestMix(cfg.ids)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		okCount   int
		bodies    = make(map[string]string)
		wg        sync.WaitGroup
	)
	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < cfg.requests; i++ {
				// Offset each client into the mix so distinct compute keys
				// arrive together and the shard has parallel work.
				path := paths[(c+i)%len(paths)]
				body, d, ok := fetch(s, path)
				mu.Lock()
				latencies = append(latencies, d)
				if ok {
					okCount++
					if _, seen := bodies[path]; !seen {
						sum := sha256.Sum256(body)
						bodies[path] = hex.EncodeToString(sum[:])
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	stats := runStats{
		Workers:     s.Workers(),
		MaxInflight: s.MaxInflight(),
		Requests:    len(latencies),
		OK:          okCount,
		Sheds:       s.Sheds(),
		Computes:    s.Computes(),
		DurationSec: elapsed.Seconds(),
		RPS:         float64(len(latencies)) / elapsed.Seconds(),
		P50Ms:       quantileMs(latencies, 0.50),
		P99Ms:       quantileMs(latencies, 0.99),
		Cache:       s.CacheStats(),
	}
	return stats, bodies, nil
}

// requestMix builds the request paths: every ID at full and quick
// parameters, cycling the three encodings so the read path (and hot
// tier) sees all representations.
func requestMix(ids []string) []string {
	formats := []string{"text", "json", "csv"}
	var paths []string
	for i, id := range ids {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		f := formats[i%len(formats)]
		paths = append(paths,
			"/v1/experiments/"+id+"?format="+f,
			"/v1/experiments/"+id+"?format="+f+"&quick=true")
	}
	return paths
}

// maxRetryWait caps how long a client honors a Retry-After hint, so a
// malfunctioning server cannot stall the bench; the serve layer's own
// hint (1 s) sits exactly at the cap.
const maxRetryWait = time.Second

// fetch performs one in-process request, retrying shed (503) responses.
// Clients behave like real ones: they honor the server's Retry-After
// header (capped at maxRetryWait). That makes the admission bound part
// of what is measured — a configuration that sheds often pays for it in
// client-observed latency and throughput, which is exactly the cost the
// worker shard exists to avoid. The shed count itself is read from the
// server, so retries don't distort it.
func fetch(s *serve.Server, path string) (body []byte, d time.Duration, ok bool) {
	start := time.Now()
	for attempt := 0; attempt < 50; attempt++ {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code == http.StatusOK {
			return rec.Body.Bytes(), time.Since(start), true
		}
		if rec.Code != http.StatusServiceUnavailable {
			break
		}
		wait := 2 * time.Millisecond
		if secs, err := strconv.Atoi(rec.Header().Get("Retry-After")); err == nil && secs > 0 {
			wait = time.Duration(secs) * time.Second
		}
		if wait > maxRetryWait {
			wait = maxRetryWait
		}
		time.Sleep(wait)
	}
	return nil, time.Since(start), false
}

// quantileMs returns the q-th latency quantile in milliseconds from a
// sorted sample (nearest-rank).
func quantileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

// sameBodies reports whether every path fetched in both runs produced
// identical bytes.
func sameBodies(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for path, digest := range a {
		if b[path] != digest {
			return false
		}
	}
	return true
}
