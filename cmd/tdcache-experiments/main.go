// Command tdcache-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	tdcache-experiments -experiment all
//	tdcache-experiments -experiment fig9 -chips 100 -instructions 200000
//	tdcache-experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tdcache"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "experiment ID (fig1..fig12, tab1..tab3, sec4.1) or 'all'")
		list         = flag.Bool("list", false, "list experiment IDs and exit")
		chips        = flag.Int("chips", 0, "Monte-Carlo population for architecture studies (default 100)")
		distChips    = flag.Int("dist-chips", 0, "population for distribution-only studies (default 300)")
		instructions = flag.Uint64("instructions", 0, "instructions per benchmark run (default 200000)")
		seed         = flag.Uint64("seed", 0, "root random seed")
		benchmarks   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		quick        = flag.Bool("quick", false, "use the reduced smoke-test configuration")
		parallel     = flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS, 1 = sequential; output is identical)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *list {
		for _, id := range tdcache.Experiments() {
			fmt.Println(id)
		}
		return
	}

	p := tdcache.DefaultExperimentParams()
	if *quick {
		p = tdcache.QuickExperimentParams()
	}
	if *chips > 0 {
		p.Chips = *chips
	}
	if *distChips > 0 {
		p.DistChips = *distChips
	}
	if *instructions > 0 {
		p.Instructions = *instructions
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *benchmarks != "" {
		p.Benchmarks = strings.Split(*benchmarks, ",")
	}
	p.Parallel = *parallel

	start := time.Now()
	if err := tdcache.RunExperiment(*experiment, p, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s in %v]\n", *experiment, time.Since(start).Round(time.Millisecond))
}
