// Command tdcache-experiments regenerates the tables and figures of the
// paper's evaluation section.
//
// Usage:
//
//	tdcache-experiments -experiment all
//	tdcache-experiments -experiment fig9 -chips 100 -instructions 200000
//	tdcache-experiments -experiment tab3 -format json
//	tdcache-experiments -experiment all -quick -store ./results
//	tdcache-experiments -list
//
// With -store, results are read from (and computed into) a
// content-addressed on-disk store keyed by experiment ID and parameter
// digest, so re-running with the same configuration serves cached
// bytes instead of re-simulating.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"tdcache"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "experiment ID (fig1..fig12, tab1..tab3, sec4.1) or 'all'")
		list         = flag.Bool("list", false, "list experiment IDs and exit")
		chips        = flag.Int("chips", 0, "Monte-Carlo population for architecture studies (default 100)")
		distChips    = flag.Int("dist-chips", 0, "population for distribution-only studies (default 300)")
		instructions = flag.Uint64("instructions", 0, "instructions per benchmark run (default 200000)")
		seed         = flag.Uint64("seed", 0, "root random seed")
		benchmarks   = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all eight)")
		quick        = flag.Bool("quick", false, "use the reduced smoke-test configuration")
		backend      = flag.String("backend", "", "cell backend: "+strings.Join(tdcache.Backends(), ", ")+" (default "+tdcache.DefaultBackend+")")
		parallel     = flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS, 1 = sequential; output is identical)")
		format       = flag.String("format", "text", "output format: text, json, or csv")
		storeDir     = flag.String("store", "", "content-addressed result store directory (empty = no store)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	// Distinguish explicitly set flags from defaults so that zero values
	// (-seed 0, -parallel 0, -chips 0) are honored rather than silently
	// conflated with "unset".
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			// The profile is flushed by StopCPUProfile (deferred after
			// us, so it runs first); a failed close means a truncated
			// profile and deserves a complaint.
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tdcache-experiments: closing cpu profile:", err)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		// Create eagerly so an unwritable path fails the run up front,
		// not after minutes of simulation; the write happens at exit.
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tdcache-experiments: closing heap profile:", err)
			}
		}()
	}

	if *list {
		for _, sp := range tdcache.ExperimentSpecs() {
			fmt.Printf("%-10s %-10s %s\n", sp.ID, sp.Kind, sp.Title)
		}
		return
	}

	p := tdcache.DefaultExperimentParams()
	if *quick {
		p = tdcache.QuickExperimentParams()
	}
	if set["chips"] {
		p.Chips = *chips
	}
	if set["dist-chips"] {
		p.DistChips = *distChips
	}
	if set["instructions"] {
		p.Instructions = *instructions
	}
	if set["seed"] {
		p.Seed = *seed
	}
	if set["benchmarks"] {
		p.Benchmarks = strings.Split(*benchmarks, ",")
	}
	if set["parallel"] {
		p.Parallel = *parallel
	}
	if err := applyBackend(p, *backend); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	f, err := tdcache.ParseArtifactFormat(*format)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var store *tdcache.ArtifactStore
	if *storeDir != "" {
		store, err = tdcache.NewArtifactStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	start := time.Now()
	if err := run(*experiment, p, f, store, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "[%s in %v]\n", *experiment, time.Since(start).Round(time.Millisecond))
}

// applyBackend validates the -backend flag value and sets it on the
// params. The empty string keeps the reference model (and the
// pre-refactor parameter digest).
func applyBackend(p *tdcache.ExperimentParams, name string) error {
	if name == "" {
		return nil
	}
	for _, b := range tdcache.Backends() {
		if b == name {
			p.Backend = name
			return nil
		}
	}
	return fmt.Errorf("tdcache-experiments: unknown backend %q (registered: %s)",
		name, strings.Join(tdcache.Backends(), ", "))
}

// run regenerates one experiment (or all of them) in the requested
// format, consulting the store first when one is configured.
func run(experiment string, p *tdcache.ExperimentParams, f tdcache.ArtifactFormat, store *tdcache.ArtifactStore, w io.Writer) error {
	if experiment == "all" {
		return runAll(p, f, store, w)
	}
	data, err := artifactBytes(experiment, p, f, store)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// runAll composes the full artifact set: a JSON array for json, `# id`
// separated documents for csv, and the classic `===== id =====` report
// for text.
func runAll(p *tdcache.ExperimentParams, f tdcache.ArtifactFormat, store *tdcache.ArtifactStore, w io.Writer) error {
	for i, sp := range tdcache.ExperimentSpecs() {
		data, err := artifactBytes(sp.ID, p, f, store)
		if err != nil {
			return err
		}
		switch f {
		case tdcache.FormatJSON:
			head := ",\n"
			if i == 0 {
				head = "[\n"
			}
			if _, err := fmt.Fprintf(w, "%s%s", head, bytes.TrimRight(data, "\n")); err != nil {
				return err
			}
		case tdcache.FormatCSV:
			if _, err := fmt.Fprintf(w, "# %s\n%s\n", sp.ID, data); err != nil {
				return err
			}
		//enum:default FormatText is the classic ===== id ===== report; -format gates foreign values
		default:
			if _, err := fmt.Fprintf(w, "===== %s =====\n%s\n", sp.ID, data); err != nil {
				return err
			}
		}
	}
	if f == tdcache.FormatJSON {
		_, err := io.WriteString(w, "\n]\n")
		return err
	}
	return nil
}

// artifactBytes returns the encoded artifact, serving from the store on
// a hit and computing (then persisting) on a miss.
func artifactBytes(id string, p *tdcache.ExperimentParams, f tdcache.ArtifactFormat, store *tdcache.ArtifactStore) ([]byte, error) {
	if store == nil {
		a, err := tdcache.BuildExperiment(id, p)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := tdcache.EncodeArtifact(&buf, f, a); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	digest := tdcache.ExperimentDigest(p)
	data, _, err := store.ReadFormat(id, digest, f)
	if err == nil {
		return data, nil
	}
	if !errors.Is(err, tdcache.ErrStoreMiss) {
		return nil, err
	}
	a, err := tdcache.BuildExperiment(id, p)
	if err != nil {
		return nil, err
	}
	if _, err := store.Put(a); err != nil {
		return nil, err
	}
	data, _, err = store.ReadFormat(id, digest, f)
	return data, err
}
