package main

import (
	"strings"
	"testing"

	"tdcache"
)

func TestApplyBackendUnknown(t *testing.T) {
	p := tdcache.QuickExperimentParams()
	err := applyBackend(p, "nonesuch")
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	// The error must list the registered backends so the user can fix
	// the flag without reading source.
	for _, name := range tdcache.Backends() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered backend %q", err, name)
		}
	}
	if p.Backend != "" {
		t.Errorf("failed validation still set Backend = %q", p.Backend)
	}
}

func TestApplyBackendKnown(t *testing.T) {
	for _, name := range tdcache.Backends() {
		p := tdcache.QuickExperimentParams()
		if err := applyBackend(p, name); err != nil {
			t.Errorf("applyBackend(%q) = %v", name, err)
		}
		if p.Backend != name {
			t.Errorf("Backend = %q after applyBackend(%q)", p.Backend, name)
		}
	}
}

func TestApplyBackendEmptyKeepsDigest(t *testing.T) {
	p := tdcache.QuickExperimentParams()
	base := tdcache.ExperimentDigest(p)
	if err := applyBackend(p, ""); err != nil {
		t.Fatalf("empty backend: %v", err)
	}
	if got := tdcache.ExperimentDigest(p); got != base {
		t.Errorf("empty -backend changed the parameter digest %q -> %q", base, got)
	}
}
