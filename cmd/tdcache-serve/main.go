// Command tdcache-serve exposes the paper's experiment artifacts over
// HTTP, backed by a content-addressed result store: each artifact is
// simulated at most once per parameter configuration and then served
// from disk, with ETag revalidation.
//
// Usage:
//
//	tdcache-serve -addr :8344 -store ./results
//
//	curl localhost:8344/v1/experiments
//	curl 'localhost:8344/v1/experiments/tab3?format=json&quick=true'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tdcache/internal/artifact"
	"tdcache/internal/experiments"
	"tdcache/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8344", "listen address")
		storeDir = flag.String("store", "tdcache-store", "artifact store directory")
		parallel = flag.Int("parallel", 0, "sweep worker-pool width (0 = GOMAXPROCS; output is identical)")
	)
	flag.Parse()
	if err := run(*addr, *storeDir, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, parallel int) error {
	st, err := artifact.NewStore(storeDir)
	if err != nil {
		return err
	}
	full := experiments.DefaultParams()
	quick := experiments.QuickParams()
	full.Parallel = parallel
	quick.Parallel = parallel
	s, err := serve.New(serve.Options{Store: st, Full: full, Quick: quick})
	if err != nil {
		return err
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "tdcache-serve: listening on %s, store %s\n", addr, st.Dir())
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	// Drain in-flight requests; long simulations get a grace period.
	fmt.Fprintln(os.Stderr, "tdcache-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
