// Command tdcache-serve exposes the paper's experiment artifacts over
// HTTP, backed by a content-addressed result store: each artifact is
// simulated at most once per parameter configuration and then served
// from disk (or the in-memory hot tier), with ETag revalidation.
// Distinct artifacts compute concurrently on a fixed worker shard;
// requests beyond the admission bound are shed with 503 + Retry-After.
//
// Usage:
//
//	tdcache-serve -addr :8344 -store ./results -workers 4
//
//	curl localhost:8344/v1/experiments
//	curl 'localhost:8344/v1/experiments/tab3?format=json&quick=true'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tdcache/internal/artifact"
	"tdcache/internal/circuit"
	"tdcache/internal/experiments"
	"tdcache/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8344", "listen address")
		storeDir    = flag.String("store", "tdcache-store", "artifact store directory")
		parallel    = flag.Int("parallel", 0, "sweep worker-pool width per compute worker (0 = GOMAXPROCS; output is identical)")
		workers     = flag.Int("workers", 0, "concurrent compute workers (0 = min(GOMAXPROCS, 4))")
		maxInflight = flag.Int("max-inflight", 0, "admitted computes before shedding 503 (0 = 4x workers)")
		cacheBytes  = flag.Int64("cache-bytes", 0, "in-memory hot-tier budget (0 = 64 MiB default, negative = disabled)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		backend     = flag.String("backend", "", "cell backend for computed artifacts: "+strings.Join(circuit.BackendNames(), ", ")+" (default "+circuit.DefaultBackendName+")")
	)
	flag.Parse()
	opts := serve.Options{
		Workers:     *workers,
		MaxInflight: *maxInflight,
		CacheBytes:  *cacheBytes,
	}
	if err := run(*addr, *storeDir, *pprofAddr, *backend, *parallel, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr, storeDir, pprofAddr, backend string, parallel int, opts serve.Options) error {
	if backend != "" {
		if _, ok := circuit.LookupBackend(backend); !ok {
			return fmt.Errorf("tdcache-serve: unknown backend %q (registered: %s)",
				backend, strings.Join(circuit.BackendNames(), ", "))
		}
	}
	st, err := artifact.NewStore(storeDir)
	if err != nil {
		return err
	}
	full := experiments.DefaultParams()
	quick := experiments.QuickParams()
	full.Parallel = parallel
	quick.Parallel = parallel
	// The backend is part of the parameter digest, so a backend-scoped
	// server and a reference server can share one store directory
	// without key collisions.
	full.Backend = backend
	quick.Backend = backend
	opts.Store = st
	opts.Full = full
	opts.Quick = quick
	s, err := serve.New(opts)
	if err != nil {
		return err
	}
	defer s.Close()

	if pprofAddr != "" {
		// Profiling stays off the artifact listener so it is never
		// exposed by default; the mux carries only the pprof handlers.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{
			Addr:              pprofAddr,
			Handler:           pmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "tdcache-serve: pprof on %s\n", pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "tdcache-serve: pprof: %v\n", err)
			}
		}()
		defer func() {
			if err := psrv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tdcache-serve: closing pprof server: %v\n", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "tdcache-serve: listening on %s, store %s, %d workers\n",
			addr, st.Dir(), s.Workers())
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		return err
	case <-ctx.Done():
	}
	// Drain in-flight requests; long simulations get a grace period.
	fmt.Fprintln(os.Stderr, "tdcache-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-done; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
