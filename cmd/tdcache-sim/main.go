// Command tdcache-sim runs a single processor simulation against one
// cache configuration and prints the resulting metrics — the smallest
// way to poke at the system.
//
// Usage:
//
//	tdcache-sim -bench gzip -scheme rsp-fifo -scenario severe -chip-seed 7
//	tdcache-sim -bench mcf -scheme ideal -instructions 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tdcache"
)

func parseScheme(s string) (tdcache.Scheme, bool, error) {
	switch strings.ToLower(s) {
	case "ideal":
		return tdcache.NoRefreshLRU, true, nil
	case "no-refresh-lru", "lru":
		return tdcache.NoRefreshLRU, false, nil
	case "partial-dsp", "partial-refresh-dsp", "dsp":
		return tdcache.PartialRefreshDSP, false, nil
	case "rsp-fifo":
		return tdcache.RSPFIFO, false, nil
	case "rsp-lru":
		return tdcache.RSPLRU, false, nil
	case "global":
		return tdcache.Scheme{Refresh: tdcache.RefreshGlobal, Placement: tdcache.PlaceLRU}, false, nil
	case "full-lru":
		return tdcache.Scheme{Refresh: tdcache.RefreshFull, Placement: tdcache.PlaceLRU}, false, nil
	}
	return tdcache.Scheme{}, false, fmt.Errorf("unknown scheme %q (ideal, lru, dsp, rsp-fifo, rsp-lru, global, full-lru)", s)
}

func parseBackend(s string) (string, error) {
	if s == "" {
		return "", nil
	}
	for _, b := range tdcache.Backends() {
		if b == s {
			return s, nil
		}
	}
	return "", fmt.Errorf("unknown backend %q (%s)", s, strings.Join(tdcache.Backends(), ", "))
}

func parseScenario(s string) (tdcache.Scenario, error) {
	switch strings.ToLower(s) {
	case "none":
		return tdcache.NoVariation, nil
	case "typical":
		return tdcache.Typical, nil
	case "severe":
		return tdcache.Severe, nil
	}
	return tdcache.Scenario{}, fmt.Errorf("unknown scenario %q (none, typical, severe)", s)
}

func main() {
	var (
		bench        = flag.String("bench", "gzip", "benchmark: "+strings.Join(tdcache.Benchmarks(), ", "))
		scheme       = flag.String("scheme", "ideal", "cache scheme: ideal, lru, dsp, rsp-fifo, rsp-lru, global, full-lru")
		scenario     = flag.String("scenario", "severe", "variation scenario: none, typical, severe")
		backend      = flag.String("backend", "", "cell backend: "+strings.Join(tdcache.Backends(), ", ")+" (default "+tdcache.DefaultBackend+")")
		chipSeed     = flag.Uint64("chip-seed", 1, "Monte-Carlo chip seed")
		seed         = flag.Uint64("seed", 1, "workload seed")
		instructions = flag.Uint64("instructions", 500_000, "instructions to simulate")
	)
	flag.Parse()

	sch, ideal, err := parseScheme(*scheme)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Validated even for the ideal scheme (which samples no chip): a
	// misspelled backend should never silently run the default model.
	bk, err := parseBackend(*backend)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := tdcache.SystemOptions{Benchmark: *bench, Scheme: sch, Seed: *seed}
	if !ideal {
		sc, err := parseScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chip, err := tdcache.SampleChipBackend(tdcache.Node32, sc, *chipSeed, bk)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts.Chip = chip
		fmt.Printf("chip: cache retention %.0f ns, dead lines %.1f%%, counter step %d cycles\n",
			chip.CacheRetentionNS, 100*chip.DeadFrac, chip.CounterStep)
	}
	sys, err := tdcache.NewSystem(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := sys.Run(*instructions)
	m := res.Metrics
	c := res.Cache
	fmt.Printf("benchmark %s, scheme %s, %d instructions\n", *bench, sch, m.Instructions)
	fmt.Printf("IPC              %8.3f\n", res.IPC)
	fmt.Printf("branch accuracy  %8.3f\n", m.BranchAccuracy)
	fmt.Printf("L1 miss rate     %8.4f\n", c.MissRate())
	fmt.Printf("L1 accesses      %8d (loads %d, stores %d)\n", c.Accesses(), c.Loads, c.Stores)
	fmt.Printf("refresh ops      %8d (line %d, forced %d, global-lines %d, moves %d)\n",
		c.RefreshOps(), c.LineRefreshes, c.ForcedRefreshes, c.GlobalLineRefr, c.WayMoves)
	fmt.Printf("expiry           %8d invalidates, %d writebacks, %d expired hits\n",
		c.ExpiryInvalidates, c.ExpiryWritebacks, c.ExpiredHits)
	fmt.Printf("bypasses         %8d (all-dead DSP sets)\n", c.BypassedAccesses)
	fmt.Printf("L2 reads         %8d (miss rate %.3f), writes %d\n", m.L2Reads, sys.L2.MissRate(), m.L2Writes)
	fmt.Printf("replays          %8d, integrity slips %d\n", m.Replays, c.IntegritySlips)
}
