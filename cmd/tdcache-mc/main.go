// Command tdcache-mc runs Monte-Carlo distribution studies: chip
// populations with their retention, frequency, leakage, and stability
// statistics — the circuit-level half of the paper without architecture
// simulation.
//
// Usage:
//
//	tdcache-mc -scenario severe -chips 200
//	tdcache-mc -scenario typical -node 45
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tdcache"
	"tdcache/internal/montecarlo"
	"tdcache/internal/stats"
)

func main() {
	var (
		scenario = flag.String("scenario", "typical", "variation scenario: typical, severe")
		node     = flag.Int("node", 32, "technology node: 65, 45, 32")
		chips    = flag.Int("chips", 200, "population size")
		seed     = flag.Uint64("seed", 20070612, "root seed")
	)
	flag.Parse()

	var sc tdcache.Scenario
	switch strings.ToLower(*scenario) {
	case "typical":
		sc = tdcache.Typical
	case "severe":
		sc = tdcache.Severe
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
	var tech tdcache.Tech
	switch *node {
	case 65:
		tech = tdcache.Node65
	case 45:
		tech = tdcache.Node45
	case 32:
		tech = tdcache.Node32
	default:
		fmt.Fprintf(os.Stderr, "unknown node %d\n", *node)
		os.Exit(1)
	}

	fmt.Printf("sampling %d chips, %s variation, %s...\n", *chips, sc.Name, tech.Name)
	study := tdcache.SampleChips(tech, sc, *seed, *chips)

	describe := func(name, unit string, f func(*montecarlo.Chip) float64) {
		col := study.Column(f)
		sort.Float64s(col)
		q := stats.QuantilesSorted(col, 0.05, 0.25, 0.5, 0.75, 0.95)
		fmt.Printf("%-22s p5=%-9.3g p25=%-9.3g median=%-9.3g p75=%-9.3g p95=%-9.3g %s\n",
			name, q[0], q[1], q[2], q[3], q[4], unit)
	}
	describe("cache retention", "ns", func(c *montecarlo.Chip) float64 { return c.CacheRetentionNS })
	describe("mean live retention", "ns", func(c *montecarlo.Chip) float64 { return c.MeanAliveNS })
	describe("dead-line fraction", "", func(c *montecarlo.Chip) float64 { return c.DeadFrac })
	describe("6T 1X frequency", "x nominal", func(c *montecarlo.Chip) float64 { return c.Freq1X })
	describe("6T 2X frequency", "x nominal", func(c *montecarlo.Chip) float64 { return c.Freq2X })
	describe("6T 1X leakage", "x golden", func(c *montecarlo.Chip) float64 { return c.Leak6T1X })
	describe("3T1D leakage", "x golden 6T", func(c *montecarlo.Chip) float64 { return c.Leak3T1D })
	describe("6T 1X unstable cells", "fraction", func(c *montecarlo.Chip) float64 { return c.Unstable1X })

	g, m, b := study.GoodMedianBad()
	fmt.Printf("\nanalysis chips (§4.3): good=#%d (%.0f ns mean, %.1f%% dead)  median=#%d (%.0f ns, %.1f%%)  bad=#%d (%.0f ns, %.1f%%)\n",
		g, study.Chips[g].MeanAliveNS, 100*study.Chips[g].DeadFrac,
		m, study.Chips[m].MeanAliveNS, 100*study.Chips[m].DeadFrac,
		b, study.Chips[b].MeanAliveNS, 100*study.Chips[b].DeadFrac)
	fmt.Printf("global-scheme discard rate: %.0f%%\n", 100*study.DiscardRate())
}
