// Command tdcache-validate checks artifact JSON against the schema:
// it reads a JSON array (or a single object) of artifact tables from
// stdin, validates each, and exits nonzero on the first failure.
//
// It closes the CI loop on the artifact pipeline:
//
//	tdcache-experiments -experiment all -quick -format json | tdcache-validate
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tdcache/internal/artifact"
)

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return fmt.Errorf("tdcache-validate: empty input")
	}

	var tables []*artifact.Table
	if trimmed[0] == '[' {
		if err := json.Unmarshal(data, &tables); err != nil {
			return fmt.Errorf("tdcache-validate: parse array: %w", err)
		}
	} else {
		t, err := artifact.DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("tdcache-validate: %w", err)
		}
		tables = append(tables, t)
	}

	for i, t := range tables {
		if err := artifact.Validate(t); err != nil {
			return fmt.Errorf("tdcache-validate: artifact %d: %w", i, err)
		}
	}
	if _, err := fmt.Fprintf(w, "tdcache-validate: %d artifact(s) valid\n", len(tables)); err != nil {
		return fmt.Errorf("tdcache-validate: reporting: %w", err)
	}
	return nil
}
