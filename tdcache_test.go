package tdcache

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 8 {
		t.Fatalf("benchmarks = %v", bs)
	}
}

func TestNewSystemIdeal(t *testing.T) {
	sys, err := NewSystem(SystemOptions{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(20000)
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	if res.Cache.Accesses() == 0 {
		t.Fatal("no cache traffic")
	}
}

func TestNewSystemUnknownBenchmark(t *testing.T) {
	if _, err := NewSystem(SystemOptions{Benchmark: "nonesuch"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNewSystemWithChip(t *testing.T) {
	chip := SampleChip(Severe, 77)
	if len(chip.Retention) != 1024 {
		t.Fatalf("retention map %d lines", len(chip.Retention))
	}
	sys, err := NewSystem(SystemOptions{
		Benchmark: "twolf",
		Scheme:    RSPFIFO,
		Chip:      chip,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(20000)
	if res.IPC <= 0 {
		t.Fatalf("IPC = %v", res.IPC)
	}
	// The chip's counter step must have been adopted by the cache.
	if got := sys.Cache.Config().CounterStep; got != int(chip.CounterStep) {
		t.Errorf("cache counter step %d, chip %d", got, chip.CounterStep)
	}
}

func TestNewSystemCustomRetention(t *testing.T) {
	ret := make(RetentionMap, 1024)
	for i := range ret {
		ret[i] = 4096
	}
	sys, err := NewSystem(SystemOptions{
		Benchmark: "gcc",
		Scheme:    Scheme{Refresh: RefreshFull, Placement: PlaceLRU},
		Retention: ret,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(30000)
	if res.Cache.LineRefreshes == 0 {
		t.Error("full refresh never fired on 4096-cycle lines")
	}
	_ = res
}

func TestSampleChipDeterminism(t *testing.T) {
	a := SampleChip(Typical, 3)
	b := SampleChip(Typical, 3)
	if a.CacheRetentionNS != b.CacheRetentionNS {
		t.Error("SampleChip not deterministic")
	}
}

func TestSampleChipsStudy(t *testing.T) {
	s := SampleChips(Node32, Severe, 11, 4)
	if len(s.Chips) != 4 {
		t.Fatalf("chips = %d", len(s.Chips))
	}
	g, m, b := s.GoodMedianBad()
	if g == b && len(s.Chips) > 1 {
		t.Error("degenerate chip selection")
	}
	_ = m
}

func TestBackendFacade(t *testing.T) {
	names := Backends()
	if len(names) < 2 || names[0] != DefaultBackend {
		t.Fatalf("Backends() = %v, want the reference backend %q first", names, DefaultBackend)
	}
	ref, err := SampleChipBackend(Node32, Typical, 7, "")
	if err != nil {
		t.Fatal(err)
	}
	def := SampleChip(Typical, 7)
	if ref.CacheRetentionNS != def.CacheRetentionNS || ref.DeadFrac != def.DeadFrac {
		t.Error("empty backend name diverges from the default sampler")
	}
	stt, err := SampleChipBackend(Node32, Typical, 7, "sttram")
	if err != nil {
		t.Fatal(err)
	}
	if stt.CacheRetentionNS == ref.CacheRetentionNS {
		t.Error("sttram chip indistinguishable from 3t1d chip")
	}
	if _, err := SampleChipBackend(Node32, Typical, 7, "nonesuch"); err == nil ||
		!strings.Contains(err.Error(), "sttram") {
		t.Errorf("unknown backend error %v must list registered names", err)
	}
}

func TestExperimentRegistryFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) != 18 {
		t.Fatalf("experiments = %v", ids)
	}
	var buf bytes.Buffer
	p := QuickExperimentParams()
	if err := RunExperiment("tab2", p, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Reorder buffer") {
		t.Error("tab2 output malformed")
	}
	if err := RunExperiment("nope", p, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestSchemeVocabulary(t *testing.T) {
	if RSPFIFO.Placement != PlaceRSPFIFO {
		t.Error("scheme constants wired wrong")
	}
	if NoRefreshLRU.String() != "no-refresh/LRU" {
		t.Errorf("scheme string = %q", NoRefreshLRU)
	}
	if Node32.FreqGHz != 4.3 || Node65.FreqGHz != 3.0 {
		t.Error("node constants wrong")
	}
	if !NoVariation.IsZero() || Typical.IsZero() {
		t.Error("scenario constants wrong")
	}
}
