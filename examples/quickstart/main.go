// Quickstart: sample a process-variation-afflicted chip, build a 3T1D
// cache system around it, and compare it against the ideal 6T design.
package main

import (
	"fmt"
	"log"

	"tdcache"
)

func main() {
	// Sample one fabricated chip under the paper's severe-variation
	// scenario at the 32 nm node.
	chip := tdcache.SampleChip(tdcache.Severe, 2007)
	fmt.Printf("sampled chip: cache retention %.0f ns, %.1f%% dead lines, counter step N = %d cycles\n\n",
		chip.CacheRetentionNS, 100*chip.DeadFrac, chip.CounterStep)

	const instructions = 300_000

	// Ideal 6T baseline.
	ideal, err := tdcache.NewSystem(tdcache.SystemOptions{Benchmark: "gzip"})
	if err != nil {
		log.Fatal(err)
	}
	base := ideal.Run(instructions)

	// The same chip with the paper's best scheme: retention-sensitive
	// FIFO placement (new blocks go to the longest-retention way; moves
	// refresh intrinsically).
	sys, err := tdcache.NewSystem(tdcache.SystemOptions{
		Benchmark: "gzip",
		Scheme:    tdcache.RSPFIFO,
		Chip:      chip,
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(instructions)

	fmt.Printf("%-22s %10s %12s %12s\n", "configuration", "IPC", "L1 miss", "refresh ops")
	fmt.Printf("%-22s %10.3f %11.2f%% %12d\n", "ideal 6T", base.IPC, 100*base.Cache.MissRate(), base.Cache.RefreshOps())
	fmt.Printf("%-22s %10.3f %11.2f%% %12d\n", "3T1D RSP-FIFO", res.IPC, 100*res.Cache.MissRate(), res.Cache.RefreshOps())
	fmt.Printf("\nnormalized performance: %.3f (the paper's claim: ≥0.97 even on severely varied chips)\n",
		res.IPC/base.IPC)
}
