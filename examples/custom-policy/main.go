// custom-policy: the library is not locked to the paper's Monte-Carlo
// chips — build a cache from any retention map you like. Here: a
// synthetic "half the cache is fast, half is slow" floorplan, evaluated
// under two schemes and two cache organizations.
package main

import (
	"fmt"
	"log"

	"tdcache"
)

func main() {
	const instructions = 150_000

	// Hand-built retention map: ways 0-1 (lines 0..511) retain 20K
	// cycles; ways 2-3 retain only 3K cycles. Line l maps to
	// (set = l mod Sets, way = l div Sets).
	ret := make(tdcache.RetentionMap, 1024)
	for l := range ret {
		if l < 512 {
			ret[l] = 20480
		} else {
			ret[l] = 3072
		}
	}

	ideal, err := tdcache.NewSystem(tdcache.SystemOptions{Benchmark: "gcc"})
	if err != nil {
		log.Fatal(err)
	}
	base := ideal.Run(instructions).IPC

	for _, sch := range []tdcache.Scheme{
		tdcache.NoRefreshLRU,
		tdcache.RSPFIFO,
		{Refresh: tdcache.RefreshPartial, Placement: tdcache.PlaceLRU},
	} {
		sys, err := tdcache.NewSystem(tdcache.SystemOptions{
			Benchmark: "gcc",
			Scheme:    sch,
			Retention: ret,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := sys.Run(instructions)
		fmt.Printf("%-26s perf %.3f   refresh ops %6d   expiry evictions %6d\n",
			sch, res.IPC/base, res.Cache.RefreshOps(),
			res.Cache.ExpiryInvalidates+res.Cache.ExpiryWritebacks)
	}

	// The same map on a 2-way organization (512 sets × 2 ways): every
	// set now pairs one fast way with one slow way.
	cfg := tdcache.CacheConfig{}
	_ = cfg
	sys, err := tdcache.NewSystem(tdcache.SystemOptions{
		Benchmark: "gcc",
		Scheme:    tdcache.RSPFIFO,
		Retention: ret,
		Cache:     custom2Way(),
	})
	if err != nil {
		log.Fatal(err)
	}
	res := sys.Run(instructions)
	fmt.Printf("%-26s perf %.3f   (2-way organization, same 64 KB)\n",
		"RSP-FIFO @ 512x2", res.IPC/base)
}

// custom2Way builds a 512-set × 2-way 64 KB configuration.
func custom2Way() *tdcache.CacheConfig {
	cfg := defaultConfig()
	cfg.Sets = 512
	cfg.Ways = 2
	return &cfg
}

func defaultConfig() tdcache.CacheConfig {
	// Start from the paper's defaults via a throwaway system... the
	// facade exposes the config type directly:
	sys, err := tdcache.NewSystem(tdcache.SystemOptions{Benchmark: "gcc"})
	if err != nil {
		log.Fatal(err)
	}
	return sys.Cache.Config()
}
