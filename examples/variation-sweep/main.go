// variation-sweep: scale process-variation severity continuously from
// zero to beyond the paper's "severe" scenario and watch the 3T1D
// cache's vital signs — retention, dead lines, 6T frequency loss — and
// the resulting system performance under RSP-FIFO.
package main

import (
	"fmt"
	"log"

	"tdcache"
)

func main() {
	const instructions = 150_000
	bench := "twolf"

	ideal, err := tdcache.NewSystem(tdcache.SystemOptions{Benchmark: bench})
	if err != nil {
		log.Fatal(err)
	}
	base := ideal.Run(instructions).IPC

	fmt.Printf("sweeping variation severity (×severe scenario), benchmark %s\n\n", bench)
	fmt.Printf("%-8s %14s %10s %10s %10s %12s\n",
		"scale", "retention(ns)", "dead", "6T freq", "3T1D perf", "counter N")
	for _, k := range []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5} {
		sc := tdcache.Severe.Scaled(k)
		study := tdcache.SampleChips(tdcache.Node32, sc, 7, 6)
		_, medianIdx, _ := study.GoodMedianBad()
		chip := &study.Chips[medianIdx]
		sys, err := tdcache.NewSystem(tdcache.SystemOptions{
			Benchmark: bench, Scheme: tdcache.RSPFIFO, Chip: chip,
		})
		if err != nil {
			log.Fatal(err)
		}
		rel := sys.Run(instructions).IPC / base
		fmt.Printf("%-8.2f %14.0f %9.1f%% %10.3f %10.3f %12d\n",
			k, chip.MeanAliveNS, 100*chip.DeadFrac, chip.Freq1X, rel, chip.CounterStep)
	}
	fmt.Println("\n(A 6T cache's frequency — and hence performance — degrades with variation;")
	fmt.Println(" the 3T1D cache absorbs the same variation into retention time and the")
	fmt.Println(" retention-sensitive scheme keeps performance nearly flat.)")
}
