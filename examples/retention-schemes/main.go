// retention-schemes: the paper's §4.3.3 story on one bad chip — compare
// every refresh × placement combination across the benchmark suite and
// see why retention-aware schemes win.
package main

import (
	"fmt"
	"log"

	"tdcache"
)

func main() {
	// Pick the worst chip out of a small severe-variation population.
	study := tdcache.SampleChips(tdcache.Node32, tdcache.Severe, 99, 12)
	_, _, badIdx := study.GoodMedianBad()
	chip := &study.Chips[badIdx]
	fmt.Printf("bad chip #%d: %.1f%% dead lines, mean live retention %.0f ns\n\n",
		badIdx, 100*chip.DeadFrac, chip.MeanAliveNS)

	schemes := []tdcache.Scheme{
		tdcache.NoRefreshLRU,
		{Refresh: tdcache.RefreshPartial, Placement: tdcache.PlaceLRU},
		{Refresh: tdcache.RefreshFull, Placement: tdcache.PlaceLRU},
		{Refresh: tdcache.RefreshNone, Placement: tdcache.PlaceDSP},
		tdcache.PartialRefreshDSP,
		tdcache.RSPFIFO,
		tdcache.RSPLRU,
	}
	benchmarks := []string{"gzip", "twolf", "fma3d"}
	const instructions = 150_000

	// Ideal baselines per benchmark.
	base := map[string]float64{}
	for _, b := range benchmarks {
		sys, err := tdcache.NewSystem(tdcache.SystemOptions{Benchmark: b})
		if err != nil {
			log.Fatal(err)
		}
		base[b] = sys.Run(instructions).IPC
	}

	fmt.Printf("%-26s", "scheme \\ benchmark")
	for _, b := range benchmarks {
		fmt.Printf("%10s", b)
	}
	fmt.Printf("%10s\n", "mean")
	for _, sch := range schemes {
		fmt.Printf("%-26s", sch)
		sum := 0.0
		for _, b := range benchmarks {
			sys, err := tdcache.NewSystem(tdcache.SystemOptions{
				Benchmark: b, Scheme: sch, Chip: chip,
			})
			if err != nil {
				log.Fatal(err)
			}
			rel := sys.Run(instructions).IPC / base[b]
			sum += rel
			fmt.Printf("%10.3f", rel)
		}
		fmt.Printf("%10.3f\n", sum/float64(len(benchmarks)))
	}
	fmt.Println("\n(§4.3.3: LRU-only schemes keep caching into dead lines and lose;")
	fmt.Println(" DSP avoids them, RSP additionally concentrates data in long-retention ways.)")
}
