// Artifact pipeline: build a typed experiment artifact, inspect its
// structured form, encode it in all three formats, and round-trip it
// through the content-addressed result store.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tdcache"
)

func main() {
	// Quick parameters keep the run to a couple of seconds; the digest
	// identifies this exact configuration in the store.
	p := tdcache.QuickExperimentParams()
	p.Chips, p.DistChips = 4, 6
	p.Instructions = 3000
	p.Benchmarks = []string{"gzip", "mcf"}
	digest := tdcache.ExperimentDigest(p)
	fmt.Printf("params digest: %s\n\n", digest[:16])

	// Build the Fig. 4 artifact (3T1D access time vs. time since write).
	a, err := tdcache.BuildExperiment("fig4", p)
	if err != nil {
		log.Fatal(err)
	}

	// The typed table behind the artifact: columns carry names and units.
	t := a.ArtifactTable()
	fmt.Printf("%s — %s (%s)\n", t.ID, t.Title, t.Kind)
	for _, c := range t.Columns {
		fmt.Printf("  column %-12s unit=%-14q rows=%d\n", c.Name, c.Unit, c.Len())
	}
	for _, m := range t.Metrics {
		fmt.Printf("  metric %-22s %10.3f %s\n", m.Name, m.Value, m.Unit)
	}

	// Any artifact encodes as paper-shaped text, canonical JSON, or CSV.
	fmt.Println("\n--- text form ---")
	if err := tdcache.EncodeArtifact(os.Stdout, tdcache.FormatText, a); err != nil {
		log.Fatal(err)
	}

	// Persist into a content-addressed store: keyed by (experiment ID,
	// params digest), written once, served forever.
	dir, err := os.MkdirTemp("", "tdcache-store-")
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := os.RemoveAll(dir); err != nil {
			log.Printf("cleaning scratch store: %v", err)
		}
	}()
	store, err := tdcache.NewArtifactStore(dir)
	if err != nil {
		log.Fatal(err)
	}
	meta, err := store.Put(a)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstored %s under %s\n", meta.ID, filepath.Join(meta.ID, meta.ParamsDigest[:16]+"..."))
	fmt.Printf("artifact digest (the serve ETag): %s\n", meta.ArtifactDigest[:16])

	// A reader in another process finds it by the same key.
	back, _, err := store.Get("fig4", digest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store round trip: %d columns, %d rows — no re-simulation needed\n",
		len(back.Columns), back.RowCount())
}
