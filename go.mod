module tdcache

go 1.22
